/**
 * Golden-file regression tier: a small reference sweep whose
 * serialized results are committed under tests/data/. Any change to
 * the characterization or evaluation pipeline that moves a metric
 * shows up as a structural diff against the golden file.
 *
 * To intentionally re-baseline after a deliberate model change:
 *   NVMEXP_REGOLD=1 build/tests/integration_test_golden_sweep
 * and commit the rewritten tests/data/golden_sweep.json.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "../support/fixtures.hh"
#include "../support/golden_compare.hh"
#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace {

using testsupport::referenceSweep;

const char *kGoldenRelPath = "tests/data/golden_sweep.json";

std::string
goldenPath()
{
    return std::string(NVMEXP_SOURCE_DIR) + "/" + kGoldenRelPath;
}

class GoldenSweep : public testsupport::QuietTest
{
};

TEST_F(GoldenSweep, MetricsMatchTheCommittedReference)
{
    JsonValue current = store::toJson(runSweep(referenceSweep()));

    if (std::getenv("NVMEXP_REGOLD")) {
        current.writeFile(goldenPath());
        GTEST_SKIP() << "regenerated " << kGoldenRelPath;
    }

    JsonValue golden = JsonValue::parseFile(goldenPath());
    std::vector<std::string> diffs;
    // Tolerance 0: the store's exact double serialization makes the
    // golden comparison bitwise; any drift is a real model change.
    bool same = testsupport::jsonNear(golden, current, 0.0, diffs);
    for (const auto &diff : diffs)
        ADD_FAILURE() << diff;
    EXPECT_TRUE(same)
        << "reference sweep diverged from " << kGoldenRelPath
        << "; if intentional, regenerate with NVMEXP_REGOLD=1";
}

TEST_F(GoldenSweep, StoreRoundTripAndCacheReproduceTheReference)
{
    if (std::getenv("NVMEXP_REGOLD"))
        GTEST_SKIP() << "regeneration run";

    std::string dir = ::testing::TempDir() + "nvmexp_golden_store";
    std::filesystem::remove_all(dir);

    SweepConfig config = referenceSweep();
    config.outDir = dir;
    runSweep(config);
    // Second run: every array must come from the characterization
    // cache, and the persisted artifact must still match the golden
    // file after a full disk round trip.
    runSweep(config);

    store::StoreStats stats = store::loadStats(dir);
    EXPECT_EQ(stats.cacheMisses, 0u);
    EXPECT_EQ(stats.cacheHits, stats.cacheLookups());
    EXPECT_GT(stats.cacheHits, 0u);

    JsonValue golden = JsonValue::parseFile(goldenPath());
    JsonValue roundTripped = store::toJson(store::loadResults(dir));
    std::vector<std::string> diffs;
    bool same = testsupport::jsonNear(golden, roundTripped, 0.0, diffs);
    for (const auto &diff : diffs)
        ADD_FAILURE() << diff;
    EXPECT_TRUE(same);
}

} // namespace
} // namespace nvmexp
