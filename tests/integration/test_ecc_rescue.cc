/**
 * End-to-end check of the shipped Sec. V-C reliability study:
 * config/mlc_ecc_rescue_study.json must reproduce the "ECC rescues
 * MLC" claim — at least one MLC configuration violates the
 * uncorrectable-rate budget with ecc "none" but satisfies it under
 * "secded-72-64" — with every reliability metric resolvable through
 * the registry-driven filter/Pareto machinery the dashboard uses.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "../support/fixtures.hh"
#include "core/config.hh"
#include "metrics/constraints.hh"
#include "metrics/metric.hh"
#include "metrics/refine.hh"

namespace nvmexp {
namespace {

const char *kBudgetClause = "uncorrectable_word_rate<=1e-2";

class EccRescueStudy : public testsupport::QuietTest
{
  protected:
    static const std::vector<EvalResult> &
    results()
    {
        static const std::vector<EvalResult> rows = [] {
            setQuiet(true);
            ExperimentConfig config = loadExperimentFile(
                std::string(NVMEXP_SOURCE_DIR) +
                "/config/mlc_ecc_rescue_study.json");
            auto out = runSweep(config.sweep);
            setQuiet(false);
            return out;
        }();
        return rows;
    }
};

TEST_F(EccRescueStudy, EccRescuesAnOtherwiseTooFaultyMlcConfiguration)
{
    metrics::ConstraintSet budget;
    budget.add(kBudgetClause, "rescue test");

    // Per cell: does the budget hold under each swept scheme?
    std::map<std::string, std::map<std::string, bool>> passes;
    for (const auto &row : results()) {
        passes[row.array.cell.name][row.reliability.scheme] =
            budget.satisfied(row);
    }

    ASSERT_TRUE(passes.count("RRAM-Opt-MLC2"));
    const auto &rram = passes.at("RRAM-Opt-MLC2");
    // The paper's claim, as data: raw MLC fails, SEC-DED rescues it.
    EXPECT_FALSE(rram.at("none"));
    EXPECT_TRUE(rram.at("secded-72-64"));
    EXPECT_TRUE(rram.at("dec-78-64"));

    // And the counterpoint: small-cell MLC FeFET is beyond rescue.
    const auto &fefet = passes.at("FeFET-Opt-MLC2");
    EXPECT_FALSE(fefet.at("none"));
    EXPECT_FALSE(fefet.at("secded-72-64"));
}

TEST_F(EccRescueStudy, ReliabilityMetricsDriveFilterParetoAndTop)
{
    // Every advertised reliability metric resolves via the registry.
    for (const char *name :
         {"raw_ber", "scrubbed_ber", "uncorrectable_word_rate",
          "uncorrectable_image_rate", "ecc_overhead",
          "effective_capacity_mib", "effective_density_mb_per_mm2"}) {
        const metrics::Metric *m =
            metrics::MetricRegistry::instance().find(name);
        ASSERT_NE(m, nullptr) << name;
        for (const auto &row : results())
            EXPECT_FALSE(std::isnan(m->eval(row))) << name;
    }

    // --filter semantics: the budget keeps a strict, non-empty subset.
    metrics::ConstraintSet budget;
    budget.add(kBudgetClause, "rescue test");
    auto kept = budget.filter(results());
    EXPECT_GT(kept.size(), 0u);
    EXPECT_LT(kept.size(), results().size());

    // Pareto over (uncorrectable rate, effective density) must keep a
    // protected row: "none" maximizes density but loses on the error
    // axis, so the front spans schemes.
    auto front = metrics::paretoByMetrics(
        results(),
        {"uncorrectable_word_rate", "effective_density_mb_per_mm2"},
        "rescue test");
    ASSERT_GT(front.size(), 1u);
    bool hasProtected = false;
    for (const auto &row : front)
        hasProtected |= row.reliability.scheme != "none";
    EXPECT_TRUE(hasProtected);

    // top-k under the minimized word rate starts with the strongest
    // protection of the cleanest cell.
    auto top = metrics::topByMetric(results(), "uncorrectable_word_rate",
                                    1, "rescue test");
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top.front().reliability.scheme, "dec-78-64");
}

TEST_F(EccRescueStudy, ConfigLoaderExpandsTheReliabilityAxis)
{
    ExperimentConfig config = loadExperimentFile(
        std::string(NVMEXP_SOURCE_DIR) +
        "/config/mlc_ecc_rescue_study.json");
    EXPECT_TRUE(config.showReliability);
    ASSERT_EQ(config.sweep.reliability.size(), 3u);
    EXPECT_EQ(config.sweep.reliability[0].ecc, "none");
    EXPECT_EQ(config.sweep.reliability[1].ecc, "secded-72-64");
    EXPECT_EQ(config.sweep.reliability[2].ecc, "dec-78-64");
    for (const auto &spec : config.sweep.reliability)
        EXPECT_EQ(spec.scrubIntervalSec, 86400.0);
    // 4 cells x 1 capacity x 1 target x 1 traffic x 3 specs.
    EXPECT_EQ(results().size(), 12u);
}

} // namespace
} // namespace nvmexp
