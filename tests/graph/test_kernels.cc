#include <gtest/gtest.h>

#include <cmath>

#include "graph/kernels.hh"

namespace nvmexp {
namespace {

/** Path graph 0-1-2-3 plus an isolated vertex 4. */
Graph
pathPlusIsland()
{
    return Graph::fromEdges(5, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(Bfs, LevelsAreCorrectOnPath)
{
    Graph g = pathPlusIsland();
    BfsResult r = bfs(g, 0);
    EXPECT_EQ(r.level[0], 0);
    EXPECT_EQ(r.level[1], 1);
    EXPECT_EQ(r.level[2], 2);
    EXPECT_EQ(r.level[3], 3);
    EXPECT_EQ(r.level[4], -1);
    EXPECT_EQ(r.reached, 4u);
}

TEST(Bfs, AccessCountsScaleWithEdges)
{
    Graph g = facebookLike();
    BfsResult r = bfs(g, 0);
    // Each traversed edge costs at least two scratchpad reads.
    EXPECT_GE(r.stats.reads, 2.0 * (double)r.reached);
    EXPECT_GT(r.stats.writes, (double)r.reached * 0.99);
    EXPECT_GT(r.reached, g.numVertices() / 2);
}

TEST(Bfs, ReadsDominateWrites)
{
    Graph g = facebookLike();
    BfsResult r = bfs(g, 0);
    // Graph processing is read-dominated (paper Sec. IV-B).
    EXPECT_GT(r.stats.reads, 5.0 * r.stats.writes);
}

TEST(BfsDeath, SourceOutOfRange)
{
    Graph g = pathPlusIsland();
    EXPECT_EXIT(bfs(g, 99), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(PageRank, RanksSumToOne)
{
    Graph g = facebookLike();
    PageRankResult r = pageRank(g, 3);
    double sum = 0.0;
    for (double rank : r.rank)
        sum += rank;
    EXPECT_NEAR(sum, 1.0, 0.05);
}

TEST(PageRank, HubsOutrankLeaves)
{
    Graph g = wikipediaLike();
    PageRankResult r = pageRank(g, 5);
    // Highest-degree vertex should outrank an average one.
    std::size_t hub = 0;
    for (Graph::Vertex v = 0; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree((Graph::Vertex)hub))
            hub = v;
    double avg = 1.0 / (double)g.numVertices();
    EXPECT_GT(r.rank[hub], 5.0 * avg);
}

TEST(PageRankDeath, ValidatesArguments)
{
    Graph g = pathPlusIsland();
    EXPECT_EXIT(pageRank(g, 0), ::testing::ExitedWithCode(1),
                "iteration");
    EXPECT_EXIT(pageRank(g, 3, 1.5), ::testing::ExitedWithCode(1),
                "damping");
}

TEST(Components, CountsIslands)
{
    Graph g = pathPlusIsland();
    ComponentsResult r = connectedComponents(g);
    EXPECT_EQ(r.numComponents, 2u);
    EXPECT_EQ(r.label[0], r.label[3]);
    EXPECT_NE(r.label[0], r.label[4]);
}

TEST(KernelTraffic, ConvertsCountsViaPipelineModel)
{
    AccessStats stats;
    stats.reads = 9e6;
    stats.writes = 1e6;
    GraphAccelModel accel;  // 1 GHz, 1 access/cycle
    TrafficPattern t = kernelTraffic("k", stats, accel);
    EXPECT_DOUBLE_EQ(t.execTime, 1e-2);  // 1e7 accesses at 1e9/s
    EXPECT_DOUBLE_EQ(t.readsPerSec, 9e8);
    EXPECT_DOUBLE_EQ(t.writesPerSec, 1e8);
}

TEST(KernelTraffic, BfsRatesLandInPaperBand)
{
    // The generic sweep covers 1-10 GB/s reads at 8-byte records;
    // real BFS traffic should land inside (or near) that band.
    Graph g = wikipediaLike();
    BfsResult r = bfs(g, 0);
    GraphAccelModel accel;
    TrafficPattern t = kernelTraffic("wiki-bfs", r.stats, accel);
    double readBps = t.readBytesPerSec(accel.scratchWordBits);
    EXPECT_GT(readBps, 1e9);
    EXPECT_LT(readBps, 10e9);
}

TEST(KernelTrafficDeath, RejectsEmptyStats)
{
    AccessStats stats;
    GraphAccelModel accel;
    EXPECT_EXIT(kernelTraffic("empty", stats, accel),
                ::testing::ExitedWithCode(1), "no accesses");
}

} // namespace
} // namespace nvmexp
