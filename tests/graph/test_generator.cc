#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hh"

namespace nvmexp {
namespace {

TEST(Rmat, RespectsRequestedSize)
{
    RmatParams p;
    p.numVertices = 1024;
    p.numEdges = 8192;
    Graph g = generateRmat(p);
    EXPECT_EQ(g.numVertices(), 1024u);
    // Undirected doubling minus dedup/self-loop losses.
    EXPECT_GT(g.numEdges(), 8192u);
    EXPECT_LE(g.numEdges(), 2u * 8192u);
}

TEST(Rmat, DeterministicUnderSeed)
{
    RmatParams p;
    p.numVertices = 512;
    p.numEdges = 2048;
    p.seed = 99;
    Graph a = generateRmat(p);
    Graph b = generateRmat(p);
    EXPECT_EQ(a.offsets(), b.offsets());
    EXPECT_EQ(a.targets(), b.targets());
}

TEST(Rmat, SeedsProduceDifferentGraphs)
{
    RmatParams p;
    p.numVertices = 512;
    p.numEdges = 2048;
    p.seed = 1;
    Graph a = generateRmat(p);
    p.seed = 2;
    Graph b = generateRmat(p);
    EXPECT_NE(a.targets(), b.targets());
}

TEST(Rmat, DegreeDistributionIsSkewed)
{
    RmatParams p;
    p.numVertices = 1 << 12;
    p.numEdges = 1 << 15;
    Graph g = generateRmat(p);
    std::size_t maxDeg = 0;
    for (Graph::Vertex v = 0; v < g.numVertices(); ++v)
        maxDeg = std::max(maxDeg, g.degree(v));
    double avgDeg = (double)g.numEdges() / (double)g.numVertices();
    // Power-law hubs: the max degree dwarfs the average.
    EXPECT_GT((double)maxDeg, 10.0 * avgDeg);
}

TEST(RmatDeath, RejectsBadProbabilities)
{
    RmatParams p;
    p.a = 0.5;
    p.b = 0.3;
    p.c = 0.3;
    EXPECT_EXIT(generateRmat(p), ::testing::ExitedWithCode(1),
                "probabilities");
}

TEST(BuiltinGraphs, HaveDocumentedScale)
{
    Graph fb = facebookLike();
    EXPECT_EQ(fb.numVertices(), 4096u);
    EXPECT_GT(fb.numEdges(), 80000u);

    Graph wiki = wikipediaLike();
    EXPECT_EQ(wiki.numVertices(), (std::size_t)1 << 16);
    EXPECT_GT(wiki.numEdges(), 1000000u);
}

} // namespace
} // namespace nvmexp
