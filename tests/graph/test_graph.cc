#include <gtest/gtest.h>

#include "graph/graph.hh"

namespace nvmexp {
namespace {

Graph
triangle()
{
    return Graph::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(Graph, UndirectedEdgesAreMirrored)
{
    Graph g = triangle();
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 6u);  // each edge in both directions
    for (Graph::Vertex v = 0; v < 3; ++v)
        EXPECT_EQ(g.degree(v), 2u);
}

TEST(Graph, DirectedKeepsOrientation)
{
    Graph g = Graph::fromEdges(3, {{0, 1}, {0, 2}}, false);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, DuplicatesAndSelfLoopsDropped)
{
    Graph g = Graph::fromEdges(
        3, {{0, 1}, {0, 1}, {1, 1}, {2, 2}}, false);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Graph, OffsetsAreMonotone)
{
    Graph g = facebookLike();
    const auto &offsets = g.offsets();
    for (std::size_t i = 1; i < offsets.size(); ++i)
        EXPECT_LE(offsets[i - 1], offsets[i]);
    EXPECT_EQ(offsets.back(), g.numEdges());
}

TEST(Graph, NeighborRangeCoversTargets)
{
    Graph g = triangle();
    auto [begin, end] = g.neighborRange(0);
    EXPECT_EQ(end - begin, 2u);
    for (std::size_t i = begin; i < end; ++i)
        EXPECT_LT(g.targets()[i], 3u);
}

TEST(Graph, StorageBytesPositive)
{
    EXPECT_GT(triangle().storageBytes(), 0.0);
}

TEST(GraphDeath, OutOfRangeVertexIsFatal)
{
    Graph g = triangle();
    EXPECT_EXIT(g.neighborRange(7), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(GraphDeath, EmptyGraphIsFatal)
{
    EXPECT_EXIT(Graph::fromEdges(0, {}), ::testing::ExitedWithCode(1),
                "at least one vertex");
}

TEST(Graph, OutOfRangeEdgesDropped)
{
    Graph g = Graph::fromEdges(2, {{0, 1}, {0, 5}, {9, 1}}, false);
    EXPECT_EQ(g.numEdges(), 1u);
}

} // namespace
} // namespace nvmexp
