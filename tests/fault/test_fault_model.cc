#include <gtest/gtest.h>

#include <cmath>

#include "celldb/tentpole.hh"
#include "fault/fault_model.hh"

namespace nvmexp {
namespace {

TEST(FaultModel, QFunctionKnownValues)
{
    EXPECT_NEAR(FaultModel::qFunction(0.0), 0.5, 1e-12);
    EXPECT_NEAR(FaultModel::qFunction(1.0), 0.158655, 1e-5);
    EXPECT_NEAR(FaultModel::qFunction(3.0), 1.349898e-3, 1e-8);
    EXPECT_LT(FaultModel::qFunction(8.0), 1e-14);
}

TEST(FaultModel, SramIsFaultFree)
{
    FaultModel model(CellCatalog::sram16());
    EXPECT_EQ(model.adjacentLevelErrorRate(), 0.0);
    EXPECT_EQ(model.bitErrorRate(), 0.0);
}

class FaultModelPerTechTest : public ::testing::TestWithParam<CellTech>
{
  protected:
    CellCatalog catalog_;
};

TEST_P(FaultModelPerTechTest, SlcBerIsSmall)
{
    FaultModel model(catalog_.optimistic(GetParam()));
    EXPECT_EQ(model.levels(), 2);
    EXPECT_LT(model.bitErrorRate(), 1e-4);
}

TEST_P(FaultModelPerTechTest, MlcBerExceedsSlcBer)
{
    MemCell slc = catalog_.optimistic(GetParam());
    if (!slc.mlcCapable)
        GTEST_SKIP() << "not MLC capable";
    FaultModel slcModel(slc);
    FaultModel mlcModel(slc.makeMlc());
    EXPECT_EQ(mlcModel.levels(), 4);
    EXPECT_GT(mlcModel.bitErrorRate(), slcModel.bitErrorRate());
}

INSTANTIATE_TEST_SUITE_P(
    Envms, FaultModelPerTechTest,
    ::testing::Values(CellTech::PCM, CellTech::STT, CellTech::RRAM,
                      CellTech::CTT, CellTech::FeFET),
    [](const ::testing::TestParamInfo<CellTech> &info) {
        return techName(info.param);
    });

TEST(FaultModel, FeFetVariationGrowsAsCellShrinks)
{
    CellCatalog catalog;
    MemCell small = catalog.optimistic(CellTech::FeFET);   // 4 F^2
    MemCell large = catalog.pessimistic(CellTech::FeFET);  // 103 F^2
    FaultModel smallMlc(small.makeMlc());
    FaultModel largeMlc(large.makeMlc());
    EXPECT_GT(smallMlc.sigmaOverMargin(), largeMlc.sigmaOverMargin());
    EXPECT_GT(smallMlc.bitErrorRate(), 100.0 * largeMlc.bitErrorRate());
}

TEST(FaultModel, SmallFeFetMlcCrossesAccuracyThreshold)
{
    // The Fig. 13 mechanism: MLC RRAM stays below the ~2e-3 BER the
    // DNN tolerates; small-cell MLC FeFET lands far above it.
    CellCatalog catalog;
    FaultModel rramMlc(catalog.optimistic(CellTech::RRAM).makeMlc());
    FaultModel fefetMlc(catalog.optimistic(CellTech::FeFET).makeMlc());
    EXPECT_LT(rramMlc.bitErrorRate(), 2e-3);
    EXPECT_GT(fefetMlc.bitErrorRate(), 1e-2);
}

TEST(FaultModel, GrayCodingDividesAdjacentRate)
{
    CellCatalog catalog;
    MemCell mlc = catalog.optimistic(CellTech::RRAM).makeMlc();
    FaultModel model(mlc);
    EXPECT_NEAR(model.bitErrorRate(),
                model.adjacentLevelErrorRate() / 2.0, 1e-18);
}

} // namespace
} // namespace nvmexp
