#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "celldb/tentpole.hh"
#include "fault/ecc.hh"
#include "fault/fault_model.hh"
#include "fault/injector.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

TEST(SecDed, RoundTripIsClean)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t word = rng();
        auto [payload, check] = SecDedCodec::encodeWord(word);
        auto result = SecDedCodec::decodeWord(payload, check);
        EXPECT_EQ(result.data, word);
        EXPECT_EQ(result.outcome, SecDedCodec::Outcome::Clean);
    }
}

TEST(SecDed, CorrectsEverySingleBitError)
{
    std::uint64_t word = 0xDEADBEEFCAFEF00Dull;
    auto [payload, check] = SecDedCodec::encodeWord(word);
    for (int bit = 0; bit < 72; ++bit) {
        std::uint64_t p = payload;
        std::uint8_t c = check;
        if (bit < 64)
            p ^= 1ull << bit;
        else
            c ^= (std::uint8_t)(1 << (bit - 64));
        auto result = SecDedCodec::decodeWord(p, c);
        EXPECT_EQ(result.data, word) << "bit " << bit;
        EXPECT_EQ(result.outcome, SecDedCodec::Outcome::Corrected)
            << "bit " << bit;
    }
}

TEST(SecDed, DetectsDoubleBitErrors)
{
    std::uint64_t word = 0x0123456789ABCDEFull;
    auto [payload, check] = SecDedCodec::encodeWord(word);
    Rng rng(2);
    int detected = 0;
    constexpr int kTrials = 300;
    for (int t = 0; t < kTrials; ++t) {
        int a = (int)rng.range(72);
        int b = (int)rng.range(72);
        if (a == b)
            continue;
        std::uint64_t p = payload;
        std::uint8_t c = check;
        for (int bit : {a, b}) {
            if (bit < 64)
                p ^= 1ull << bit;
            else
                c ^= (std::uint8_t)(1 << (bit - 64));
        }
        auto result = SecDedCodec::decodeWord(p, c);
        EXPECT_EQ(result.outcome,
                  SecDedCodec::Outcome::Uncorrectable);
        ++detected;
    }
    EXPECT_GT(detected, kTrials / 2);
}

TEST(SecDed, ImageEncodeDecodeRoundTrip)
{
    std::vector<std::int8_t> data(1000);
    Rng rng(3);
    for (auto &b : data)
        b = (std::int8_t)rng();
    auto image = SecDedCodec::encode({data.data(), data.size()});
    EXPECT_EQ(image.payload.size(), 125u);
    EXPECT_NEAR(image.overhead(), 72.0 / 64.0, 1e-12);

    std::vector<std::int8_t> out(data.size());
    auto stats = SecDedCodec::decode(image, {out.data(), out.size()});
    EXPECT_EQ(stats.words, 125u);
    EXPECT_EQ(stats.corrected, 0u);
    EXPECT_EQ(stats.uncorrectable, 0u);
    EXPECT_EQ(out, data);
}

TEST(SecDed, ImageSurvivesScatteredSingleErrors)
{
    std::vector<std::int8_t> data(4096, 0x5A);
    auto image = SecDedCodec::encode({data.data(), data.size()});
    // Flip exactly one bit in every 8th codeword.
    for (std::size_t w = 0; w < image.payload.size(); w += 8)
        image.payload[w] ^= 1ull << (w % 64);
    std::vector<std::int8_t> out(data.size());
    auto stats = SecDedCodec::decode(image, {out.data(), out.size()});
    EXPECT_EQ(stats.uncorrectable, 0u);
    EXPECT_EQ(stats.corrected, image.payload.size() / 8 +
                                   (image.payload.size() % 8 ? 1 : 0));
    EXPECT_EQ(out, data);
}

TEST(SecDed, OverheadComesFromRealStoredAndDataBitCounts)
{
    // A non-multiple-of-8 buffer pays for its padded trailing word;
    // the old hardcoded 72/64 under-reported it.
    struct Case { std::size_t bytes; double overhead; };
    for (const auto &c : std::initializer_list<Case>{
             {0, 1.0},
             {1, 72.0 / 8.0},
             {7, 72.0 / 56.0},
             {8, 72.0 / 64.0},
             {9, 144.0 / 72.0}}) {
        std::vector<std::int8_t> data(c.bytes, 0x3C);
        auto image = SecDedCodec::encode({data.data(), data.size()});
        EXPECT_EQ(image.dataBytes, c.bytes);
        EXPECT_DOUBLE_EQ(image.overhead(), c.overhead) << c.bytes;
    }
    // A default-constructed (empty) image reports no overhead.
    EXPECT_DOUBLE_EQ(SecDedCodec::EncodedImage{}.overhead(), 1.0);
}

/**
 * The reliability evaluator's analytical word-failure model against
 * the concrete machinery it summarizes: encode an image, corrupt all
 * 72 bits per codeword with FaultInjector::injectUniform, decode, and
 * count words that are flagged uncorrectable or deliver wrong data.
 * Distinct-bit error patterns of weight >= 2 are exactly the words
 * binomialTailAtLeast(72, 2, ber) predicts (weight-2 always flags,
 * odd weights >= 3 miscorrect into a data mismatch), so observed and
 * analytical counts must agree within sampling noise across the
 * SLC..MLC raw-BER range.
 */
class SecDedMonteCarlo : public ::testing::TestWithParam<double>
{
};

TEST_P(SecDedMonteCarlo, AgreesWithAnalyticalWordFailureRate)
{
    const double ber = GetParam();
    constexpr std::size_t kWords = 1 << 16;
    std::vector<std::int8_t> data(kWords * 8);
    Rng fill(0xECC0 + (std::uint64_t)(1.0 / ber));
    for (auto &b : data)
        b = (std::int8_t)fill();
    auto image = SecDedCodec::encode({data.data(), data.size()});

    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 0xC0DE);
    injector.injectUniform(
        {reinterpret_cast<std::int8_t *>(image.payload.data()),
         image.payload.size() * 8},
        ber);
    injector.injectUniform(
        {reinterpret_cast<std::int8_t *>(image.check.data()),
         image.check.size()},
        ber);

    std::size_t failures = 0;
    for (std::size_t w = 0; w < kWords; ++w) {
        auto r = SecDedCodec::decodeWord(image.payload[w],
                                         image.check[w]);
        std::uint64_t original = 0;
        std::memcpy(&original, data.data() + w * 8, 8);
        if (r.outcome == SecDedCodec::Outcome::Uncorrectable ||
            r.data != original) {
            ++failures;
        }
    }

    double expected =
        (double)kWords * binomialTailAtLeast(72, 2, ber);
    EXPECT_NEAR((double)failures, expected,
                6.0 * std::sqrt(expected + 1.0) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(SlcToMlcBerRange, SecDedMonteCarlo,
                         ::testing::Values(1e-9, 1e-6, 1e-4, 1e-3,
                                           3e-3, 1e-2));

TEST(SecDed, AnalyticalFailureRateMatchesMonteCarlo)
{
    double ber = 5e-3;
    double predicted = secDedWordFailureRate(ber);
    Rng rng(4);
    int failures = 0;
    constexpr int kWords = 20000;
    for (int w = 0; w < kWords; ++w) {
        int errors = 0;
        for (int bit = 0; bit < 72; ++bit)
            if (rng.bernoulli(ber))
                ++errors;
        if (errors >= 2)
            ++failures;
    }
    double measured = (double)failures / kWords;
    EXPECT_NEAR(measured, predicted,
                5.0 * std::sqrt(predicted / kWords) + 5e-3);
}

TEST(SecDed, EffectiveBerCollapsesRawBer)
{
    // The Fig. 13 rescue scenario: raw MLC-FeFET-class BER ~2e-2 is
    // too high even with SEC-DED, but ~1e-3-class raw BER drops by
    // orders of magnitude.
    EXPECT_LT(secDedEffectiveBer(1e-3) / 1e-3, 0.1);
    EXPECT_LT(secDedEffectiveBer(1e-4) / 1e-4, 0.01);
    // Monotone in the raw rate.
    EXPECT_LT(secDedEffectiveBer(1e-4), secDedEffectiveBer(1e-3));
}

TEST(SecDed, RescuesModerateMlcConfigurations)
{
    // MLC RRAM raw BER (~9e-4) post-ECC lands far below the ~2e-3
    // application tolerance; small-cell MLC FeFET (~2.4e-2) stays
    // above it even with ECC.
    CellCatalog catalog;
    double rram =
        FaultModel(catalog.optimistic(CellTech::RRAM).makeMlc())
            .bitErrorRate();
    double fefet =
        FaultModel(catalog.optimistic(CellTech::FeFET).makeMlc())
            .bitErrorRate();
    EXPECT_LT(secDedEffectiveBer(rram), 1e-4);
    EXPECT_GT(secDedEffectiveBer(fefet), 2e-3);
}

TEST(SecDedDeath, ValidatesInputs)
{
    EXPECT_EXIT(secDedWordFailureRate(-0.1),
                ::testing::ExitedWithCode(1), "raw BER");
    SecDedCodec::EncodedImage image;
    image.payload.resize(2);
    image.check.resize(1);
    std::vector<std::int8_t> out(8);
    EXPECT_EXIT(SecDedCodec::decode(image, {out.data(), out.size()}),
                ::testing::ExitedWithCode(1), "mismatch");
}

} // namespace
} // namespace nvmexp
