#include <gtest/gtest.h>

#include <cmath>

#include "celldb/tentpole.hh"
#include "fault/ecc.hh"
#include "fault/fault_model.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

TEST(SecDed, RoundTripIsClean)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t word = rng();
        auto [payload, check] = SecDedCodec::encodeWord(word);
        auto result = SecDedCodec::decodeWord(payload, check);
        EXPECT_EQ(result.data, word);
        EXPECT_EQ(result.outcome, SecDedCodec::Outcome::Clean);
    }
}

TEST(SecDed, CorrectsEverySingleBitError)
{
    std::uint64_t word = 0xDEADBEEFCAFEF00Dull;
    auto [payload, check] = SecDedCodec::encodeWord(word);
    for (int bit = 0; bit < 72; ++bit) {
        std::uint64_t p = payload;
        std::uint8_t c = check;
        if (bit < 64)
            p ^= 1ull << bit;
        else
            c ^= (std::uint8_t)(1 << (bit - 64));
        auto result = SecDedCodec::decodeWord(p, c);
        EXPECT_EQ(result.data, word) << "bit " << bit;
        EXPECT_EQ(result.outcome, SecDedCodec::Outcome::Corrected)
            << "bit " << bit;
    }
}

TEST(SecDed, DetectsDoubleBitErrors)
{
    std::uint64_t word = 0x0123456789ABCDEFull;
    auto [payload, check] = SecDedCodec::encodeWord(word);
    Rng rng(2);
    int detected = 0;
    constexpr int kTrials = 300;
    for (int t = 0; t < kTrials; ++t) {
        int a = (int)rng.range(72);
        int b = (int)rng.range(72);
        if (a == b)
            continue;
        std::uint64_t p = payload;
        std::uint8_t c = check;
        for (int bit : {a, b}) {
            if (bit < 64)
                p ^= 1ull << bit;
            else
                c ^= (std::uint8_t)(1 << (bit - 64));
        }
        auto result = SecDedCodec::decodeWord(p, c);
        EXPECT_EQ(result.outcome,
                  SecDedCodec::Outcome::Uncorrectable);
        ++detected;
    }
    EXPECT_GT(detected, kTrials / 2);
}

TEST(SecDed, ImageEncodeDecodeRoundTrip)
{
    std::vector<std::int8_t> data(1000);
    Rng rng(3);
    for (auto &b : data)
        b = (std::int8_t)rng();
    auto image = SecDedCodec::encode({data.data(), data.size()});
    EXPECT_EQ(image.payload.size(), 125u);
    EXPECT_NEAR(image.overhead(), 72.0 / 64.0, 1e-12);

    std::vector<std::int8_t> out(data.size());
    auto stats = SecDedCodec::decode(image, {out.data(), out.size()});
    EXPECT_EQ(stats.words, 125u);
    EXPECT_EQ(stats.corrected, 0u);
    EXPECT_EQ(stats.uncorrectable, 0u);
    EXPECT_EQ(out, data);
}

TEST(SecDed, ImageSurvivesScatteredSingleErrors)
{
    std::vector<std::int8_t> data(4096, 0x5A);
    auto image = SecDedCodec::encode({data.data(), data.size()});
    // Flip exactly one bit in every 8th codeword.
    for (std::size_t w = 0; w < image.payload.size(); w += 8)
        image.payload[w] ^= 1ull << (w % 64);
    std::vector<std::int8_t> out(data.size());
    auto stats = SecDedCodec::decode(image, {out.data(), out.size()});
    EXPECT_EQ(stats.uncorrectable, 0u);
    EXPECT_EQ(stats.corrected, image.payload.size() / 8 +
                                   (image.payload.size() % 8 ? 1 : 0));
    EXPECT_EQ(out, data);
}

TEST(SecDed, AnalyticalFailureRateMatchesMonteCarlo)
{
    double ber = 5e-3;
    double predicted = secDedWordFailureRate(ber);
    Rng rng(4);
    int failures = 0;
    constexpr int kWords = 20000;
    for (int w = 0; w < kWords; ++w) {
        int errors = 0;
        for (int bit = 0; bit < 72; ++bit)
            if (rng.bernoulli(ber))
                ++errors;
        if (errors >= 2)
            ++failures;
    }
    double measured = (double)failures / kWords;
    EXPECT_NEAR(measured, predicted,
                5.0 * std::sqrt(predicted / kWords) + 5e-3);
}

TEST(SecDed, EffectiveBerCollapsesRawBer)
{
    // The Fig. 13 rescue scenario: raw MLC-FeFET-class BER ~2e-2 is
    // too high even with SEC-DED, but ~1e-3-class raw BER drops by
    // orders of magnitude.
    EXPECT_LT(secDedEffectiveBer(1e-3) / 1e-3, 0.1);
    EXPECT_LT(secDedEffectiveBer(1e-4) / 1e-4, 0.01);
    // Monotone in the raw rate.
    EXPECT_LT(secDedEffectiveBer(1e-4), secDedEffectiveBer(1e-3));
}

TEST(SecDed, RescuesModerateMlcConfigurations)
{
    // MLC RRAM raw BER (~9e-4) post-ECC lands far below the ~2e-3
    // application tolerance; small-cell MLC FeFET (~2.4e-2) stays
    // above it even with ECC.
    CellCatalog catalog;
    double rram =
        FaultModel(catalog.optimistic(CellTech::RRAM).makeMlc())
            .bitErrorRate();
    double fefet =
        FaultModel(catalog.optimistic(CellTech::FeFET).makeMlc())
            .bitErrorRate();
    EXPECT_LT(secDedEffectiveBer(rram), 1e-4);
    EXPECT_GT(secDedEffectiveBer(fefet), 2e-3);
}

TEST(SecDedDeath, ValidatesInputs)
{
    EXPECT_EXIT(secDedWordFailureRate(-0.1),
                ::testing::ExitedWithCode(1), "raw BER");
    SecDedCodec::EncodedImage image;
    image.payload.resize(2);
    image.check.resize(1);
    std::vector<std::int8_t> out(8);
    EXPECT_EXIT(SecDedCodec::decode(image, {out.data(), out.size()}),
                ::testing::ExitedWithCode(1), "mismatch");
}

} // namespace
} // namespace nvmexp
