#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "celldb/tentpole.hh"
#include "fault/injector.hh"
#include "util/thread_pool.hh"

namespace nvmexp {
namespace {

std::vector<std::int8_t>
zeros(std::size_t n)
{
    return std::vector<std::int8_t>(n, 0);
}

std::size_t
popcountDiff(const std::vector<std::int8_t> &a,
             const std::vector<std::int8_t> &b)
{
    std::size_t bits = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        bits += (std::size_t)__builtin_popcount(
            (unsigned)(std::uint8_t)(a[i] ^ b[i]));
    return bits;
}

TEST(Injector, FaultFreeModelFlipsNothing)
{
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 1);
    auto data = zeros(4096);
    EXPECT_EQ(injector.inject({data.data(), data.size()}), 0u);
    for (auto b : data)
        EXPECT_EQ(b, 0);
}

TEST(Injector, UniformBerFlipCountNearExpectation)
{
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 2);
    auto data = zeros(1 << 18);
    double ber = 1e-3;
    std::size_t flips =
        injector.injectUniform({data.data(), data.size()}, ber);
    double expected = ber * (double)data.size() * 8.0;
    double sigma = std::sqrt(expected);
    EXPECT_NEAR((double)flips, expected, 6.0 * sigma);
    // Reported flips match the actual corrupted bits.
    EXPECT_EQ(popcountDiff(data, zeros(data.size())), flips);
}

class InjectorBerTest : public ::testing::TestWithParam<double>
{
};

TEST_P(InjectorBerTest, FlipRateTracksRequestedBer)
{
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 3);
    auto data = zeros(1 << 17);
    double ber = GetParam();
    std::size_t flips =
        injector.injectUniform({data.data(), data.size()}, ber);
    double nbits = (double)data.size() * 8.0;
    double expected = ber * nbits;
    EXPECT_NEAR((double)flips, expected,
                6.0 * std::sqrt(expected + 1.0) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, InjectorBerTest,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2,
                                           0.1));

TEST(Injector, DeterministicUnderSeed)
{
    CellCatalog catalog;
    FaultModel model(catalog.optimistic(CellTech::RRAM).makeMlc());
    auto a = zeros(8192);
    auto b = zeros(8192);
    FaultInjector ia(model, 77), ib(model, 77);
    ia.inject({a.data(), a.size()});
    ib.inject({b.data(), b.size()});
    EXPECT_EQ(a, b);
}

TEST(Injector, SameSeedsIdenticalFaultMapsAcrossJobCounts)
{
    // Sweep studies run per-trial injectors from worker threads
    // (mlcFaultStudy under ParallelSweepRunner): each injector owns
    // its Rng, so the fault maps must be bit-identical however many
    // threads interleave the trials.
    CellCatalog catalog;
    FaultModel model(catalog.optimistic(CellTech::FeFET).makeMlc());

    auto runWith = [&](int jobs) {
        std::vector<std::vector<std::int8_t>> images(16, zeros(8192));
        ThreadPool pool(jobs);
        parallelFor(pool, images.size(), [&](std::size_t i) {
            FaultInjector injector(model, 0xBA5E + (std::uint64_t)i);
            injector.inject({images[i].data(), images[i].size()});
        });
        return images;
    };

    auto serial = runWith(1);
    for (int jobs : {2, 4, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        auto parallel = runWith(jobs);
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(serial[i], parallel[i]) << "image " << i;
    }
    // The per-trial seeds actually differ (guards against an injector
    // ignoring its seed: all-equal images would also pass the
    // determinism check above).
    EXPECT_NE(serial[0], serial[1]);
}

TEST(Injector, DistinctSeedsGiveStatisticallyDistinctInjections)
{
    FaultModel model(CellCatalog::sram16());
    constexpr int kSeeds = 24;
    constexpr double kBer = 5e-3;
    std::vector<std::vector<std::int8_t>> images;
    std::vector<std::size_t> counts;
    for (int s = 0; s < kSeeds; ++s) {
        auto data = zeros(1 << 14);
        FaultInjector injector(model, 0x1000 + (std::uint64_t)s);
        counts.push_back(
            injector.injectUniform({data.data(), data.size()}, kBer));
        images.push_back(std::move(data));
    }

    // Fault maps are pairwise distinct...
    for (int a = 0; a < kSeeds; ++a)
        for (int b = a + 1; b < kSeeds; ++b)
            EXPECT_NE(images[a], images[b]) << a << " vs " << b;

    // ...and the flip counts spread like independent Binomial draws:
    // not all equal, each within 6 sigma of the expectation.
    double expected = kBer * (double)images[0].size() * 8.0;
    double sigma = std::sqrt(expected);
    std::size_t distinct = 0;
    for (int s = 0; s < kSeeds; ++s) {
        EXPECT_NEAR((double)counts[s], expected, 6.0 * sigma) << s;
        if (counts[s] != counts[0])
            ++distinct;
    }
    EXPECT_GT(distinct, 0u);
}

TEST(Injector, MlcErrorsFlipOneBitPerCell)
{
    CellCatalog catalog;
    // Force a very high adjacent-level rate via a tiny MLC FeFET.
    MemCell cell = catalog.optimistic(CellTech::FeFET).makeMlc();
    FaultModel model(cell);
    ASSERT_GT(model.adjacentLevelErrorRate(), 1e-3);
    FaultInjector injector(model, 5);
    auto data = zeros(1 << 16);
    std::size_t flips = injector.inject({data.data(), data.size()});
    EXPECT_GT(flips, 0u);
    EXPECT_EQ(popcountDiff(data, zeros(data.size())), flips);
    // Cell errors = flips (one bit per erroneous cell); rate should
    // track the model within statistical noise.
    double ncells = (double)data.size() * 4.0;
    double expected = model.adjacentLevelErrorRate() * ncells;
    EXPECT_NEAR((double)flips, expected,
                6.0 * std::sqrt(expected) + 2.0);
}

TEST(Injector, FullBerFlipsEverything)
{
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 6);
    auto data = zeros(64);
    std::size_t flips =
        injector.injectUniform({data.data(), data.size()}, 1.0);
    EXPECT_EQ(flips, data.size() * 8);
    for (auto b : data)
        EXPECT_EQ((std::uint8_t)b, 0xFF);
}

TEST(InjectorDeath, NonSlcMlcLevelCountsAreFatalWithContext)
{
    // A 3-bit cell stores 8 levels; the injector's cell-count math
    // only covers SLC (2) and 2-bit MLC (4). It used to treat every
    // non-2-level cell as 2-bit MLC, silently corrupting the mapping
    // for anything else — now any other level count dies with the
    // count in the message.
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::RRAM).makeMlc(3);
    FaultModel model(cell);
    ASSERT_EQ(model.levels(), 8);
    FaultInjector injector(model, 11);
    auto data = zeros(64);
    EXPECT_EXIT(injector.inject({data.data(), data.size()}),
                ::testing::ExitedWithCode(1), "8 levels");
}

/**
 * Regression for the sparse-trial index arithmetic: the production
 * geometric-skip loop (now integer-indexed) must visit exactly the
 * bits the original float-accumulator formulation visited for the
 * same seed — the refactor changed the arithmetic, not the stream.
 */
TEST(Injector, SparseTrialsMatchFloatReferenceHitForHit)
{
    FaultModel model(CellCatalog::sram16());
    for (std::uint64_t seed : {1ull, 42ull, 0xFEEDull}) {
        for (double ber : {0.5, 0.05, 0.004}) {
            SCOPED_TRACE("seed=" + std::to_string(seed) +
                         " ber=" + std::to_string(ber));
            constexpr std::size_t kBytes = 512;
            auto data = zeros(kBytes);
            FaultInjector injector(model, seed);
            std::size_t flips =
                injector.injectUniform({data.data(), data.size()}, ber);

            // Reference: the pre-refactor double-accumulator skip
            // sampling, exact at this small n.
            auto reference = zeros(kBytes);
            Rng rng(seed);
            double logq = std::log1p(-ber);
            double idx = 0.0;
            std::size_t refFlips = 0;
            while (true) {
                double u = rng.uniform();
                while (u <= 0.0)
                    u = rng.uniform();
                idx += std::floor(std::log(u) / logq) + 1.0;
                if (idx > (double)(kBytes * 8))
                    break;
                std::size_t bit = (std::size_t)(idx - 1.0);
                reference[bit / 8] ^= (std::int8_t)(1 << (bit % 8));
                ++refFlips;
            }
            EXPECT_EQ(flips, refFlips);
            EXPECT_EQ(data, reference);
        }
    }
}

TEST(InjectorDeath, RejectsBadBer)
{
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 7);
    auto data = zeros(16);
    EXPECT_EXIT(
        injector.injectUniform({data.data(), data.size()}, -0.1),
        ::testing::ExitedWithCode(1), "error rate");
    EXPECT_EXIT(
        injector.injectUniform({data.data(), data.size()}, 1.1),
        ::testing::ExitedWithCode(1), "error rate");
}

} // namespace
} // namespace nvmexp
