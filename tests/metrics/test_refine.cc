#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "../support/fixtures.hh"
#include "metrics/refine.hh"

namespace nvmexp {
namespace {

class RefineTest : public testsupport::QuietTest
{
};

const std::vector<EvalResult> &
sweepResults()
{
    static const std::vector<EvalResult> results = [] {
        setQuiet(true);
        auto r = runSweep(testsupport::wideSweep());
        setQuiet(false);
        return r;
    }();
    return results;
}

TEST_F(RefineTest, BestByMetricFoldsDirection)
{
    const auto &results = sweepResults();
    const EvalResult *lowestPower =
        metrics::bestByMetric(results, "total_power");
    ASSERT_NE(lowestPower, nullptr);
    for (const auto &r : results)
        EXPECT_LE(lowestPower->totalPower, r.totalPower);

    // Maximize metric: "best" density is the largest.
    const EvalResult *densest =
        metrics::bestByMetric(results, "density_mb_per_mm2");
    ASSERT_NE(densest, nullptr);
    for (const auto &r : results)
        EXPECT_GE(densest->array.densityMbPerMm2(),
                  r.array.densityMbPerMm2());

    EXPECT_EQ(metrics::bestByMetric({}, "total_power"), nullptr);
}

TEST_F(RefineTest, TopByMetricIsStableAndDirectionAware)
{
    const auto &results = sweepResults();
    auto top = metrics::topByMetric(results, "total_power", 5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_LE(top[i - 1].totalPower, top[i].totalPower);
    EXPECT_DOUBLE_EQ(
        top[0].totalPower,
        metrics::bestByMetric(results, "total_power")->totalPower);

    // Maximize metric: best-first means descending values.
    auto dense = metrics::topByMetric(results, "density_mb_per_mm2", 3);
    ASSERT_EQ(dense.size(), 3u);
    for (std::size_t i = 1; i < dense.size(); ++i)
        EXPECT_GE(dense[i - 1].array.densityMbPerMm2(),
                  dense[i].array.densityMbPerMm2());

    // k larger than the row count returns everything, still sorted.
    auto all = metrics::topByMetric(results, "total_power", 1u << 20);
    EXPECT_EQ(all.size(), results.size());
}

TEST_F(RefineTest, TopByMetricKeepsInputOrderOnTies)
{
    // Duplicate the same row: stable ranking must preserve input
    // order among equal keys, which we can observe via traffic names.
    std::vector<EvalResult> rows;
    const auto &results = sweepResults();
    rows.push_back(results[0]);
    rows.push_back(results[0]);
    rows[0].traffic.name = "first";
    rows[1].traffic.name = "second";
    auto top = metrics::topByMetric(rows, "total_power", 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].traffic.name, "first");
    EXPECT_EQ(top[1].traffic.name, "second");
}

TEST_F(RefineTest, ParetoByMetricsMatchesTemplateFront)
{
    const auto &results = sweepResults();
    auto named = metrics::paretoByMetrics(
        results, {"total_power", "latency_load"});
    auto legacy = paretoFront<EvalResult>(
        results, [](const EvalResult &r) { return r.totalPower; },
        [](const EvalResult &r) { return r.latencyLoad; });
    ASSERT_EQ(named.size(), legacy.size());
    for (std::size_t i = 0; i < named.size(); ++i) {
        EXPECT_DOUBLE_EQ(named[i].totalPower,
                         legacy[i].totalPower);
        EXPECT_EQ(named[i].traffic.name, legacy[i].traffic.name);
    }

    // 3-D: every survivor is non-dominated under folded directions.
    auto front3 = metrics::paretoByMetrics(
        results, {"total_power", "latency_load", "read_latency"});
    EXPECT_FALSE(front3.empty());
    EXPECT_GE(front3.size(), named.size());
}

TEST_F(RefineTest, ParetoByMetricsDropsNanRows)
{
    // A registered metric that is NaN for one marked row: NaN keys
    // can neither dominate nor be dominated, so the row must be
    // dropped from the front (pre-fix it was unconditionally kept).
    static const bool registered = [] {
        metrics::Metric m;
        m.name = "test_nan_power";
        m.unit = "W";
        m.description = "total_power, NaN for rows named 'nan-row'";
        m.eval = [](const EvalResult &r) {
            return r.traffic.name == "nan-row"
                ? std::numeric_limits<double>::quiet_NaN()
                : r.totalPower;
        };
        metrics::MetricRegistry::instance().add(std::move(m));
        return true;
    }();
    ASSERT_TRUE(registered);

    auto rows = sweepResults();
    rows[0].traffic.name = "nan-row";
    auto front = metrics::paretoByMetrics(
        rows, {"test_nan_power", "latency_load", "read_latency"});
    EXPECT_FALSE(front.empty());
    for (const auto &r : front)
        EXPECT_NE(r.traffic.name, "nan-row");

    // NaN-free rows produce the same front with or without the guard.
    auto clean = sweepResults();
    auto direct = metrics::paretoByMetrics(
        clean, {"total_power", "latency_load"});
    auto viaNanAware = metrics::paretoByMetrics(
        clean, {"test_nan_power", "latency_load"});
    EXPECT_EQ(direct.size(), viaNanAware.size());
}

using RefineDeathTest = RefineTest;

TEST_F(RefineDeathTest, UnknownMetricsAreFatalWithContext)
{
    EXPECT_EXIT(metrics::bestByMetric(sweepResults(), "warp"),
                ::testing::ExitedWithCode(1), "best-by.*'warp'");
    EXPECT_EXIT(metrics::topByMetric(sweepResults(), "warp", 3),
                ::testing::ExitedWithCode(1), "top-k.*'warp'");
    EXPECT_EXIT(
        metrics::paretoByMetrics(sweepResults(), {"total_power",
                                                  "warp"}),
        ::testing::ExitedWithCode(1), "pareto.*'warp'");
    EXPECT_EXIT(metrics::paretoByMetrics(sweepResults(), {}),
                ::testing::ExitedWithCode(1), "at least one metric");
    // k=0 is rejected on the programmatic path too (the JSON/CLI
    // parsers already refuse it), never silently returning {}.
    EXPECT_EXIT(metrics::topByMetric(sweepResults(), "total_power", 0),
                ::testing::ExitedWithCode(1), "positive count");
}

} // namespace
} // namespace nvmexp
