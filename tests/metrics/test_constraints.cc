#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>

#include "../support/fixtures.hh"
#include "metrics/constraints.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

using metrics::ConstraintClause;
using metrics::ConstraintOp;
using metrics::ConstraintSet;

class ConstraintsTest : public testsupport::QuietTest
{
};

const std::vector<EvalResult> &
sweepResults()
{
    static const std::vector<EvalResult> results = [] {
        setQuiet(true);
        auto r = runSweep(testsupport::wideSweep());
        setQuiet(false);
        return r;
    }();
    return results;
}

TEST_F(ConstraintsTest, ParsesEveryOperator)
{
    struct Case
    {
        const char *text;
        ConstraintOp op;
        double bound;
    };
    const Case cases[] = {
        {"total_power<0.5", ConstraintOp::LT, 0.5},
        {"total_power<=0.5", ConstraintOp::LE, 0.5},
        {"lifetime_years>3", ConstraintOp::GT, 3.0},
        {"lifetime_years>=3", ConstraintOp::GE, 3.0},
        {"viable==1", ConstraintOp::EQ, 1.0},
        {"viable!=0", ConstraintOp::NE, 0.0},
    };
    for (const auto &c : cases) {
        ConstraintClause clause = ConstraintClause::parse(c.text);
        EXPECT_EQ(clause.op, c.op) << c.text;
        EXPECT_DOUBLE_EQ(clause.bound, c.bound) << c.text;
        EXPECT_EQ(clause.text(), c.text);
    }
}

TEST_F(ConstraintsTest, ParseToleratesWhitespaceAndScientificBounds)
{
    ConstraintClause clause =
        ConstraintClause::parse("  read_latency <= 5e-9 ");
    EXPECT_EQ(clause.metric, "read_latency");
    EXPECT_EQ(clause.op, ConstraintOp::LE);
    EXPECT_DOUBLE_EQ(clause.bound, 5e-9);

    // Infinity bounds are legal (e.g. unlimited-endurance selection).
    ConstraintClause inf =
        ConstraintClause::parse("lifetime_sec>=Infinity");
    EXPECT_TRUE(std::isinf(inf.bound));
}

TEST_F(ConstraintsTest, HoldsAppliesIeeeComparisons)
{
    ConstraintClause le{"total_power", ConstraintOp::LE, 1.0};
    EXPECT_TRUE(le.holds(1.0));
    EXPECT_TRUE(le.holds(0.5));
    EXPECT_FALSE(le.holds(1.5));
    // NaN metric values fail every clause except !=.
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(le.holds(nan));
    ConstraintClause ne{"total_power", ConstraintOp::NE, 1.0};
    EXPECT_TRUE(ne.holds(nan));
}

TEST_F(ConstraintsTest, SatisfiedIsVacuouslyTrueWhenEmpty)
{
    ConstraintSet empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.satisfied(sweepResults().front()));
    EXPECT_EQ(empty.filter(sweepResults()).size(),
              sweepResults().size());
}

TEST_F(ConstraintsTest, FilterMatchesPerRowSatisfied)
{
    ConstraintSet set;
    set.add("latency_load<=1.0");
    set.add("lifetime_years>=1");
    auto kept = set.filter(sweepResults());
    std::size_t expected = 0;
    for (const auto &r : sweepResults())
        if (set.satisfied(r))
            ++expected;
    EXPECT_EQ(kept.size(), expected);
    EXPECT_LT(kept.size(), sweepResults().size());
    EXPECT_FALSE(kept.empty());
}

TEST_F(ConstraintsTest, CheapestFirstOrderingNeverChangesTheOutcome)
{
    // Same clauses in both declared orders: derived-metric clause
    // first vs last. Evaluation is cost-ordered internally; the
    // per-row verdicts must be identical either way.
    ConstraintSet derivedFirst;
    derivedFirst.add("lifetime_years>=1");   // cost 1 (derived)
    derivedFirst.add("total_power<=0.2");    // cost 0 (field)
    ConstraintSet fieldFirst;
    fieldFirst.add("total_power<=0.2");
    fieldFirst.add("lifetime_years>=1");
    for (const auto &r : sweepResults())
        EXPECT_EQ(derivedFirst.satisfied(r), fieldFirst.satisfied(r));
    // Declared order is preserved for serialization.
    EXPECT_EQ(derivedFirst.clauses()[0].metric, "lifetime_years");
    EXPECT_EQ(derivedFirst.toJson().dump(-1).find("lifetime_years") <
                  derivedFirst.toJson().dump(-1).find("total_power"),
              true);
}

/** The pre-refactor fixed-field filter, kept verbatim as the
 *  reference the fromLegacy adapter must reproduce exactly. */
bool
legacyReferenceSatisfies(const EvalResult &result,
                         const Constraints &constraints)
{
    if (constraints.maxLatencyLoad > 0.0 &&
        result.latencyLoad > constraints.maxLatencyLoad)
        return false;
    if (constraints.maxPowerWatts > 0.0 &&
        result.totalPower > constraints.maxPowerWatts)
        return false;
    if (constraints.maxAreaM2 > 0.0 &&
        result.array.areaM2 > constraints.maxAreaM2)
        return false;
    if (constraints.minLifetimeSec > 0.0 &&
        result.lifetimeSec < constraints.minLifetimeSec)
        return false;
    if (constraints.maxReadLatency > 0.0 &&
        result.array.readLatency > constraints.maxReadLatency)
        return false;
    if (constraints.maxWriteLatency > 0.0 &&
        result.array.writeLatency > constraints.maxWriteLatency)
        return false;
    if (constraints.requireBandwidth &&
        (!result.meetsReadBandwidth || !result.meetsWriteBandwidth))
        return false;
    return true;
}

TEST_F(ConstraintsTest, FromLegacyReproducesTheFixedFieldFilter)
{
    const auto &results = sweepResults();
    Rng rng(0xC0415);
    for (int round = 0; round < 50; ++round) {
        Constraints legacy;
        legacy.maxLatencyLoad = rng.uniform() < 0.3
            ? -1.0 : rng.uniform() * 2.0;
        legacy.maxPowerWatts = rng.uniform() < 0.3
            ? -1.0 : rng.uniform() * 0.5;
        legacy.maxAreaM2 = rng.uniform() < 0.5
            ? -1.0 : rng.uniform() * 1e-5;
        legacy.minLifetimeSec = rng.uniform() < 0.5
            ? -1.0 : rng.uniform() * 10.0 * 365.0 * 86400.0;
        legacy.maxReadLatency = rng.uniform() < 0.5
            ? -1.0 : rng.uniform() * 100e-9;
        legacy.maxWriteLatency = rng.uniform() < 0.5
            ? -1.0 : rng.uniform() * 500e-9;
        legacy.requireBandwidth = rng.uniform() < 0.5;

        ConstraintSet declarative = ConstraintSet::fromLegacy(legacy);
        for (const auto &r : results) {
            EXPECT_EQ(declarative.satisfied(r),
                      legacyReferenceSatisfies(r, legacy))
                << "round " << round;
            // And the production adapter path agrees too.
            EXPECT_EQ(satisfies(r, legacy),
                      legacyReferenceSatisfies(r, legacy))
                << "round " << round;
        }
    }
}

TEST_F(ConstraintsTest, JsonRoundTripIsLossless)
{
    ConstraintSet set;
    set.add("total_power<0.5");
    set.add(ConstraintClause{"lifetime_sec", ConstraintOp::GE,
                             3.0 * 365.0 * 86400.0});
    std::string dumped = set.toJson().dump(-1);
    ConstraintSet reloaded =
        ConstraintSet::fromJson(JsonValue::parse(dumped));
    EXPECT_EQ(reloaded.toJson().dump(-1), dumped);
    ASSERT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.clauses()[0].text(), "total_power<0.5");

    // String entries are accepted alongside object entries.
    ConstraintSet fromStrings = ConstraintSet::fromJson(
        JsonValue::parse(R"(["total_power<0.5",
            {"metric": "viable", "op": "==", "bound": 1}])"));
    EXPECT_EQ(fromStrings.size(), 2u);
}

using ConstraintsDeathTest = ConstraintsTest;

TEST_F(ConstraintsDeathTest, UnknownMetricIsFatalWithContext)
{
    EXPECT_EXIT(ConstraintClause::parse("warp_factor<0.5", "--filter"),
                ::testing::ExitedWithCode(1),
                "--filter.*'warp_factor' unknown");
}

TEST_F(ConstraintsDeathTest, BadOperatorIsFatal)
{
    EXPECT_EXIT(metrics::constraintOpFromName("=<"),
                ::testing::ExitedWithCode(1), "operator '=<' unknown");
    EXPECT_EXIT(ConstraintClause::fromJson(JsonValue::parse(
                    R"({"metric": "total_power", "op": "~",
                        "bound": 1})")),
                ::testing::ExitedWithCode(1), "operator '~' unknown");
}

TEST_F(ConstraintsDeathTest, MalformedClausesAreFatal)
{
    EXPECT_EXIT(ConstraintClause::parse("total_power"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(ConstraintClause::parse("<0.5"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(ConstraintClause::parse(""),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST_F(ConstraintsDeathTest, MalformedBoundsAreFatal)
{
    EXPECT_EXIT(ConstraintClause::parse("total_power<abc"),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(ConstraintClause::parse("total_power<"),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(ConstraintClause::parse("total_power<0.5x"),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(ConstraintClause::parse("total_power<NaN"),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(ConstraintClause::fromJson(JsonValue::parse(
                    R"({"metric": "total_power", "op": "<",
                        "bound": "high"})")),
                ::testing::ExitedWithCode(1), "must be a number");
}

/** RAII LC_NUMERIC override restoring the previous locale. */
class ScopedNumericLocale
{
  public:
    explicit ScopedNumericLocale(const char *name)
    {
        const char *current = std::setlocale(LC_NUMERIC, nullptr);
        saved_ = current ? current : "C";
        active_ = std::setlocale(LC_NUMERIC, name) != nullptr;
    }

    ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }

    bool active() const { return active_; }

  private:
    std::string saved_;
    bool active_ = false;
};

TEST_F(ConstraintsTest, BoundParseIsLocaleIndependent)
{
    // Under a comma-decimal LC_NUMERIC, strtod would stop "0.5" at the
    // '.' (misparsing the bound as 0) and happily accept "0,5". The
    // shared JSON number parse must do neither, whatever the locale.
    ScopedNumericLocale locale("de_DE.UTF-8");
    if (!locale.active()) {
        GTEST_SKIP()
            << "no comma-decimal locale installed; cannot exercise "
               "the LC_NUMERIC-sensitive path";
    }
    ConstraintClause clause = ConstraintClause::parse("total_power<0.5");
    EXPECT_EQ(clause.bound, 0.5);
    EXPECT_EQ(clause.text(), "total_power<0.5");

    ScopedFatalThrows guard;
    EXPECT_THROW(ConstraintClause::parse("total_power<0,5"),
                 FatalError);
}

} // namespace
} // namespace nvmexp
