#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../support/fixtures.hh"
#include "metrics/metric.hh"

namespace nvmexp {
namespace {

using metrics::Direction;
using metrics::Metric;
using metrics::MetricRegistry;

class MetricRegistryTest : public testsupport::QuietTest
{
};

EvalResult
sampleResult()
{
    static const EvalResult result = [] {
        setQuiet(true);
        auto results = runSweep(testsupport::smallSweep());
        setQuiet(false);
        return results.front();
    }();
    return result;
}

TEST_F(MetricRegistryTest, NamesAreSortedAndStable)
{
    auto names = MetricRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    // The vocabulary the issue names must exist.
    for (const char *required :
         {"total_power", "latency_load", "lifetime_years",
          "read_latency", "write_latency", "area_mm2", "read_edp"}) {
        EXPECT_NE(MetricRegistry::instance().find(required), nullptr)
            << required;
    }
}

TEST_F(MetricRegistryTest, AccessorsMatchTheUnderlyingFields)
{
    EvalResult r = sampleResult();
    auto value = [&](const char *name) {
        return metrics::metric(name).eval(r);
    };
    EXPECT_DOUBLE_EQ(value("total_power"), r.totalPower);
    EXPECT_DOUBLE_EQ(value("dynamic_power"), r.dynamicPower);
    EXPECT_DOUBLE_EQ(value("leakage_power"), r.leakagePower);
    EXPECT_DOUBLE_EQ(value("latency_load"), r.latencyLoad);
    EXPECT_DOUBLE_EQ(value("lifetime_sec"), r.lifetimeSec);
    EXPECT_DOUBLE_EQ(value("lifetime_years"), r.lifetimeYears());
    EXPECT_DOUBLE_EQ(value("read_latency"), r.array.readLatency);
    EXPECT_DOUBLE_EQ(value("write_latency"), r.array.writeLatency);
    EXPECT_DOUBLE_EQ(value("area_m2"), r.array.areaM2);
    EXPECT_DOUBLE_EQ(value("area_mm2"), r.array.areaM2 * 1e6);
    EXPECT_DOUBLE_EQ(value("read_edp"),
                     r.array.readLatency * r.array.readEnergy);
    EXPECT_DOUBLE_EQ(value("density_mb_per_mm2"),
                     r.array.densityMbPerMm2());
    EXPECT_DOUBLE_EQ(value("viable"), r.viable() ? 1.0 : 0.0);
}

TEST_F(MetricRegistryTest, ArrayAccessorsAgreeWithEvalAccessors)
{
    EvalResult r = sampleResult();
    auto &registry = MetricRegistry::instance();
    int arrayMetrics = 0;
    for (const auto &name : registry.names()) {
        const Metric &m = *registry.find(name);
        if (!m.hasArrayAccessor())
            continue;
        ++arrayMetrics;
        EXPECT_DOUBLE_EQ(m.array(r.array), m.eval(r)) << name;
    }
    EXPECT_GE(arrayMetrics, 10);
    // Application-level metrics have no array accessor.
    EXPECT_FALSE(metrics::metric("total_power").hasArrayAccessor());
    EXPECT_FALSE(metrics::metric("latency_load").hasArrayAccessor());
}

TEST_F(MetricRegistryTest, DirectionMetadataFoldsIntoAscending)
{
    EvalResult r = sampleResult();
    const Metric &power = metrics::metric("total_power");
    const Metric &density = metrics::metric("density_mb_per_mm2");
    EXPECT_TRUE(power.minimize());
    EXPECT_FALSE(density.minimize());
    EXPECT_DOUBLE_EQ(power.ascending(r), power.eval(r));
    EXPECT_DOUBLE_EQ(density.ascending(r), -density.eval(r));
}

TEST_F(MetricRegistryTest, UnitsArePresent)
{
    EXPECT_EQ(metrics::metric("total_power").unit, "W");
    EXPECT_EQ(metrics::metric("lifetime_years").unit, "yr");
    EXPECT_EQ(metrics::metric("area_mm2").unit, "mm^2");
    for (const auto &name : MetricRegistry::instance().names()) {
        EXPECT_FALSE(metrics::metric(name).unit.empty()) << name;
        EXPECT_FALSE(metrics::metric(name).description.empty()) << name;
    }
}

TEST_F(MetricRegistryTest, FindReturnsNullOnUnknown)
{
    EXPECT_EQ(MetricRegistry::instance().find("not-a-metric"), nullptr);
}

using MetricRegistryDeathTest = MetricRegistryTest;

TEST_F(MetricRegistryDeathTest, RequireUnknownIsFatalAndListsNames)
{
    EXPECT_EXIT(metrics::metric("warp_factor"),
                ::testing::ExitedWithCode(1),
                "'warp_factor' unknown.*total_power");
    EXPECT_EXIT(MetricRegistry::instance().require("warp_factor",
                                                   "--filter"),
                ::testing::ExitedWithCode(1), "--filter");
}

TEST_F(MetricRegistryDeathTest, DuplicateAndMalformedAddsAreFatal)
{
    Metric dup;
    dup.name = "total_power";
    dup.eval = [](const EvalResult &) { return 0.0; };
    EXPECT_EXIT(MetricRegistry::instance().add(dup),
                ::testing::ExitedWithCode(1), "registered twice");

    Metric unnamed;
    unnamed.eval = [](const EvalResult &) { return 0.0; };
    EXPECT_EXIT(MetricRegistry::instance().add(unnamed),
                ::testing::ExitedWithCode(1), "empty name");

    Metric noAccessor;
    noAccessor.name = "accessorless";
    EXPECT_EXIT(MetricRegistry::instance().add(noAccessor),
                ::testing::ExitedWithCode(1), "missing eval accessor");
}

} // namespace
} // namespace nvmexp
