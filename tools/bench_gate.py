#!/usr/bin/env python3
"""Machine-independent regression gate over google-benchmark JSON.

Raw nanosecond timings are not comparable across machines, so the gate
never compares them directly. Instead every benchmark in a file is
normalized by that same file's reference benchmark (the single-threaded
scalar sweep evaluation), and the committed snapshot's *ratios* are
compared against the freshly measured ones:

    fresh[b] / fresh[ref]  <=  (1 + tolerance) * committed[b] / committed[ref]

A benchmark is gated only when it appears in both files and matches
--filter; the default filter keeps the single-threaded entries, whose
ratios do not depend on the runner's core count.

The gate also enforces the batched path's headline win: the fresh file
must show the scalar reference running at least --min-speedup times
slower than its batched counterpart (0 disables the check).

Additional intra-file speedup requirements take the repeatable
--speedup SLOW,FAST,MIN[,MINCPUS] flag: the fresh run must show SLOW
taking at least MIN times longer than FAST. A MINCPUS field bounds
hardware-dependent checks: multi-process wall-clock wins (the campaign
benchmarks) need real cores, so the check is reported but skipped on
runners with fewer CPUs — the same reason the default filter keeps
only single-threaded entries.

Exit status: 0 clean, 1 regression or missing data.
"""

import argparse
import json
import re
import sys

DEFAULT_REFERENCE = "BM_SweepEvalScalar/1"
DEFAULT_BATCHED = "BM_SweepEvalBatched/1"
# Single-threaded entries only: multi-worker ratios depend on how many
# cores the runner has, which is exactly what normalization can't fix.
# The campaign rows carry google-benchmark's /real_time suffix (they
# time forked children, where CPU time is meaningless).
DEFAULT_FILTER = r"(/1$)|(/1/real_time$)|(NoRel)|(CampaignMerge)"


TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(paths):
    """benchmark name -> real_time in ns for the plain iteration rows
    of every file in `paths`, plus the smallest num_cpus seen."""
    if isinstance(paths, str):
        paths = [paths]
    times = {}
    num_cpus = None
    for path in paths:
        with open(path) as handle:
            doc = json.load(handle)
        cpus = doc.get("context", {}).get("num_cpus")
        if cpus is not None:
            num_cpus = cpus if num_cpus is None else min(num_cpus, cpus)
        for row in doc.get("benchmarks", []):
            if row.get("run_type", "iteration") != "iteration":
                continue  # skip _mean/_median/_stddev aggregates
            scale = TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)
            times[row["name"]] = float(row["real_time"]) * scale
    if not times:
        sys.exit(f"error: {', '.join(paths)} hold no benchmark rows")
    return times, num_cpus


def parse_speedup_spec(spec):
    parts = spec.split(",")
    if len(parts) not in (3, 4):
        sys.exit(f"error: --speedup wants SLOW,FAST,MIN[,MINCPUS], "
                 f"got '{spec}'")
    min_cpus = int(parts[3]) if len(parts) == 4 else 0
    return parts[0], parts[1], float(parts[2]), min_cpus


def normalized(times, reference, path):
    if reference not in times:
        sys.exit(f"error: {path} lacks reference '{reference}'")
    ref = times[reference]
    if ref <= 0.0:
        sys.exit(f"error: {path} reference time is {ref}")
    return {name: time / ref for name, time in times.items()}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("committed", help="committed snapshot JSON")
    parser.add_argument("fresh", nargs="+",
                        help="freshly measured JSON (several files "
                             "merge, e.g. perf_sweep + perf_campaign)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized slowdown (default 0.25)")
    parser.add_argument("--reference", default=DEFAULT_REFERENCE,
                        help="normalization benchmark (default %(default)s)")
    parser.add_argument("--filter", default=DEFAULT_FILTER,
                        help="regex of benchmarks to gate "
                             "(default %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required fresh reference/batched speedup; "
                             "0 disables (default %(default)s)")
    parser.add_argument("--batched", default=DEFAULT_BATCHED,
                        help="batched counterpart of the reference "
                             "(default %(default)s)")
    parser.add_argument("--speedup", action="append", default=[],
                        metavar="SLOW,FAST,MIN[,MINCPUS]",
                        help="require fresh[SLOW]/fresh[FAST] >= MIN; "
                             "skipped (reported) when the fresh run's "
                             "machine has fewer than MINCPUS CPUs")
    args = parser.parse_args()

    committed, _ = load_times(args.committed)
    fresh, fresh_cpus = load_times(args.fresh)
    fresh_label = ", ".join(args.fresh)
    committed_norm = normalized(committed, args.reference, args.committed)
    fresh_norm = normalized(fresh, args.reference, fresh_label)

    pattern = re.compile(args.filter)
    gated = [name for name in sorted(committed_norm)
             if name in fresh_norm and pattern.search(name)
             and name != args.reference]
    if not gated:
        sys.exit("error: no benchmarks matched the gate filter")

    failures = []
    for name in gated:
        was, now = committed_norm[name], fresh_norm[name]
        verdict = "ok"
        if now > (1.0 + args.tolerance) * was:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{name}: committed x{was:.3f} -> fresh x{now:.3f} "
              f"of {args.reference} [{verdict}]")

    if args.min_speedup > 0.0:
        if args.batched not in fresh:
            sys.exit(f"error: {fresh_label} lacks '{args.batched}'")
        speedup = fresh[args.reference] / fresh[args.batched]
        verdict = "ok" if speedup >= args.min_speedup else "TOO SLOW"
        print(f"batched speedup: x{speedup:.2f} "
              f"(required x{args.min_speedup:.2f}) [{verdict}]")
        if speedup < args.min_speedup:
            failures.append("batched-speedup")

    for spec in args.speedup:
        slow, fast, minimum, min_cpus = parse_speedup_spec(spec)
        for name in (slow, fast):
            if name not in fresh:
                sys.exit(f"error: {fresh_label} lacks '{name}'")
        speedup = fresh[slow] / fresh[fast]
        if min_cpus and (fresh_cpus is None or fresh_cpus < min_cpus):
            print(f"speedup {slow} vs {fast}: x{speedup:.2f} "
                  f"(required x{minimum:.2f} on >= {min_cpus} CPUs) "
                  f"[SKIPPED: runner has "
                  f"{fresh_cpus if fresh_cpus is not None else '?'}]")
            continue
        verdict = "ok" if speedup >= minimum else "TOO SLOW"
        print(f"speedup {slow} vs {fast}: x{speedup:.2f} "
              f"(required x{minimum:.2f}) [{verdict}]")
        if speedup < minimum:
            failures.append(f"speedup:{fast}")

    if failures:
        print(f"bench gate FAILED: {', '.join(failures)}")
        return 1
    print(f"bench gate passed: {len(gated)} benchmarks within "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
