#include "lint.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "campaign/manifest.hh"
#include "core/config.hh"
#include "core/dashboard.hh"
#include "metrics/constraints.hh"
#include "metrics/metric.hh"
#include "metrics/refine.hh"
#include "reliability/reliability.hh"
#include "store/result_store.hh"
#include "store/serialize.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace lint {

namespace fs = std::filesystem;

void
LintReport::add(std::string file, std::string key, std::string message)
{
    diagnostics.push_back(
        {std::move(file), std::move(key), std::move(message)});
}

void
LintReport::merge(const LintReport &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
    checked += other.checked;
}

void
LintReport::print(std::ostream &out) const
{
    for (const auto &d : diagnostics) {
        out << d.file << ": ";
        if (!d.key.empty())
            out << "[" << d.key << "] ";
        out << d.message << "\n";
    }
}

namespace {

/** Run `fn` with fatal() converted to FatalError; on failure, record
 *  a (file, key) diagnostic. @return whether `fn` succeeded. */
template <typename Fn>
bool
guarded(LintReport &report, const std::string &file,
        const std::string &key, Fn &&fn)
{
    ScopedFatalThrows guard;
    try {
        fn();
        return true;
    } catch (const FatalError &e) {
        report.add(file, key, e.what());
        return false;
    }
}

/** Top-level config keys loadExperiment() consumes. Anything else in
 *  a config is dead weight at best and a typo'd axis at worst —
 *  loadExperiment() silently ignores it, so the lint flags it. */
const std::set<std::string> &
knownConfigKeys()
{
    static const std::set<std::string> keys = {
        "experiment",  "cells",       "capacities_mib",
        "word_bits",   "node_nm",     "sram_node_nm",
        "jobs",        "out_dir",     "resume",
        "batch",       "batch_size",  "targets",
        "traffic",     "workloads",   "workload",
        "reliability", "ecc",         "constraints",
        "pareto",      "top_k",       "output_csv",
        "campaign",
    };
    return keys;
}

std::string
joined(const std::vector<std::string> &names)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < names.size(); ++i)
        out << (i ? " " : "") << names[i];
    return out.str();
}

/** ECC scheme names referenced by a config's "ecc"/"reliability"
 *  section, across all accepted shapes (lenient: malformed shapes
 *  yield nothing here and are reported by the full load instead). */
std::vector<std::string>
referencedEccSchemes(const JsonValue &block)
{
    std::vector<std::string> names;
    if (block.isString()) {
        names.push_back(block.asString());
    } else if (block.isObject() && block.has("ecc")) {
        const JsonValue &ecc = block.at("ecc");
        if (ecc.isString()) {
            names.push_back(ecc.asString());
        } else if (ecc.isArray()) {
            for (const auto &entry : ecc.asArray())
                if (entry.isString())
                    names.push_back(entry.asString());
        }
    }
    return names;
}

void
checkEccNames(LintReport &report, const std::string &path,
              const std::string &key, const JsonValue &block)
{
    for (const auto &name : referencedEccSchemes(block)) {
        if (reliability::findEccScheme(name))
            continue;
        std::vector<std::string> known;
        for (const auto &scheme : reliability::eccSchemes())
            known.push_back(scheme.name);
        report.add(path, key,
                   "ECC scheme '" + name + "' unknown (known schemes: " +
                       joined(known) + ")");
    }
}

/** Per-section checks with precise keys, so one bad config yields one
 *  diagnostic per problem instead of stopping at the first fatal. */
void
checkConfigSections(LintReport &report, const std::string &path,
                    const JsonValue &doc)
{
    for (const auto &key : doc.memberNames()) {
        if (!knownConfigKeys().count(key)) {
            report.add(path, key,
                       "unknown top-level key (known keys: " +
                           joined({knownConfigKeys().begin(),
                                   knownConfigKeys().end()}) +
                           ")");
        }
    }

    if (doc.has("constraints") && doc.at("constraints").isArray()) {
        const auto &clauses = doc.at("constraints").asArray();
        for (std::size_t i = 0; i < clauses.size(); ++i) {
            std::string key = "constraints[" + std::to_string(i) + "]";
            guarded(report, path, key, [&] {
                metrics::ConstraintClause::fromJson(clauses[i], key);
            });
        }
    }

    if (doc.has("pareto")) {
        guarded(report, path, "pareto", [&] {
            metrics::paretoMetricsFromJson(doc.at("pareto"), "pareto");
        });
    }

    if (doc.has("top_k")) {
        guarded(report, path, "top_k", [&] {
            metrics::topSpecFromJson(doc.at("top_k"), "top_k");
        });
    }

    if (doc.has("workloads") && doc.at("workloads").isArray()) {
        const auto &specs = doc.at("workloads").asArray();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::string key = "workloads[" + std::to_string(i) + "]";
            guarded(report, path, key, [&] {
                workload::validateWorkloadJson(specs[i]);
            });
        }
    }
    if (doc.has("workload")) {
        guarded(report, path, "workload", [&] {
            workload::validateWorkloadJson(doc.at("workload"));
        });
    }

    if (doc.has("reliability"))
        checkEccNames(report, path, "reliability", doc.at("reliability"));
    if (doc.has("ecc"))
        checkEccNames(report, path, "ecc", doc.at("ecc"));
}

void
checkFormatHeader(LintReport &report, const std::string &path,
                  const JsonValue &doc)
{
    if (!doc.isObject() || !doc.has("format") ||
        !doc.at("format").isNumber()) {
        report.add(path, "format", "missing numeric \"format\" version");
        return;
    }
    int format = (int)doc.at("format").asNumber();
    if (format != store::kFormatVersion) {
        report.add(path, "format",
                   "format version " + std::to_string(format) +
                       " is stale (current: " +
                       std::to_string(store::kFormatVersion) +
                       "); regenerate the artifact");
    }
}

} // namespace

LintReport
lintConfigFile(const std::string &path)
{
    LintReport report;
    ++report.checked;

    JsonValue doc;
    if (!guarded(report, path, "", [&] { doc = JsonValue::parseFile(path); }))
        return report;
    if (!doc.isObject()) {
        report.add(path, "", "config root must be a JSON object");
        return report;
    }

    checkConfigSections(report, path, doc);

    // The full load validates everything the section checks do not
    // reach: cell references, traffic shapes, targets, jobs bounds,
    // reliability cross products. Skipped when the section checks
    // already failed — the load would re-report the first of them.
    if (report.clean())
        guarded(report, path, "load", [&] { loadExperiment(doc); });
    return report;
}

LintReport
lintGoldenFile(const std::string &path)
{
    LintReport report;
    ++report.checked;

    JsonValue doc;
    if (!guarded(report, path, "", [&] { doc = JsonValue::parseFile(path); }))
        return report;
    checkFormatHeader(report, path, doc);
    if (!report.clean())
        return report;
    if (!doc.has("results") || !doc.at("results").isArray()) {
        report.add(path, "results", "missing \"results\" array");
        return report;
    }
    guarded(report, path, "results",
            [&] { store::evalResultsFromJson(doc); });
    return report;
}

namespace {

/** tools/bench_gate.py's normalization reference and its batched
 *  counterpart: the gate hard-fails when either is missing, so the
 *  lint catches a truncated or mis-filtered snapshot at commit time. */
const char *const kGateReference = "BM_SweepEvalScalar/1";
const char *const kGateBatched = "BM_SweepEvalBatched/1";

} // namespace

LintReport
lintBenchFile(const std::string &path)
{
    LintReport report;
    ++report.checked;

    JsonValue doc;
    if (!guarded(report, path, "",
                 [&] { doc = JsonValue::parseFile(path); }))
        return report;
    if (!doc.isObject()) {
        report.add(path, "", "benchmark snapshot must be a JSON object");
        return report;
    }

    // bench_gate.py bounds hardware-dependent speedup checks with
    // context.num_cpus; a snapshot without it silently skips those
    // checks on every runner.
    if (!doc.has("context") || !doc.at("context").isObject()) {
        report.add(path, "context", "missing \"context\" object");
    } else {
        const JsonValue &context = doc.at("context");
        if (!context.has("num_cpus") ||
            !context.at("num_cpus").isNumber() ||
            context.at("num_cpus").asNumber() < 1) {
            report.add(path, "context.num_cpus",
                       "missing or non-positive CPU count (bench_gate "
                       "silently skips MINCPUS-bounded checks without "
                       "it)");
        }
    }

    if (!doc.has("benchmarks") || !doc.at("benchmarks").isArray() ||
        doc.at("benchmarks").asArray().empty()) {
        report.add(path, "benchmarks",
                   "missing or empty \"benchmarks\" array");
        return report;
    }

    // The unit map bench_gate.py normalizes with; an unknown unit
    // scales by 1.0 there without any warning, corrupting every
    // committed-vs-fresh ratio built from the row.
    static const std::set<std::string> knownUnits = {"ns", "us", "ms",
                                                     "s"};
    std::set<std::string> iterationNames;
    double referenceTime = -1.0;
    const auto &rows = doc.at("benchmarks").asArray();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::string key = "benchmarks[" + std::to_string(i) + "]";
        const JsonValue &row = rows[i];
        if (!row.isObject()) {
            report.add(path, key, "row must be a JSON object");
            continue;
        }
        if (!row.has("name") || !row.at("name").isString() ||
            row.at("name").asString().empty()) {
            report.add(path, key, "row carries no benchmark name");
            continue;
        }
        const std::string name = row.at("name").asString();
        key += " (" + name + ")";

        bool iteration = true;
        if (row.has("run_type")) {
            if (!row.at("run_type").isString()) {
                report.add(path, key, "run_type must be a string");
                continue;
            }
            const std::string runType = row.at("run_type").asString();
            if (runType != "iteration" && runType != "aggregate") {
                report.add(path, key,
                           "unknown run_type '" + runType +
                               "' (bench_gate knows iteration and "
                               "aggregate)");
            }
            iteration = runType == "iteration";
        }
        if (row.has("time_unit")) {
            if (!row.at("time_unit").isString() ||
                !knownUnits.count(row.at("time_unit").asString())) {
                report.add(path, key,
                           "time_unit must be one of ns/us/ms/s "
                           "(bench_gate scales unknown units by 1.0 "
                           "without warning)");
            }
        }
        if (!iteration)
            continue;
        if (!iterationNames.insert(name).second) {
            report.add(path, key,
                       "duplicate iteration row (bench_gate keeps "
                       "only the last, masking the first)");
        }
        if (!row.has("real_time") || !row.at("real_time").isNumber() ||
            !std::isfinite(row.at("real_time").asNumber()) ||
            row.at("real_time").asNumber() < 0.0) {
            report.add(path, key,
                       "real_time must be a finite non-negative "
                       "number");
            continue;
        }
        if (name == kGateReference)
            referenceTime = row.at("real_time").asNumber();
    }

    if (!iterationNames.count(kGateReference)) {
        report.add(path, kGateReference,
                   "missing normalization reference iteration row");
    } else if (referenceTime == 0.0) {
        report.add(path, kGateReference,
                   "reference real_time must be positive (every "
                   "normalized ratio divides by it)");
    }
    if (!iterationNames.count(kGateBatched)) {
        report.add(path, kGateBatched,
                   "missing batched counterpart iteration row (the "
                   "gate's min-speedup check needs it)");
    }
    return report;
}

LintReport
lintStoreDir(const std::string &dir)
{
    LintReport report;
    ++report.checked;

    std::string checkpoint = dir + "/checkpoint.jsonl";
    if (fs::exists(checkpoint)) {
        std::ifstream in(checkpoint);
        std::string line;
        JsonValue header;
        if (!in || !std::getline(in, line)) {
            report.add(checkpoint, "", "unreadable or empty journal");
        } else if (!JsonValue::tryParse(line, header)) {
            report.add(checkpoint, "header",
                       "first line does not parse as JSON");
        } else {
            checkFormatHeader(report, checkpoint, header);
            if (!header.has("fingerprint") ||
                !header.at("fingerprint").isString() ||
                header.at("fingerprint").asString().empty()) {
                report.add(checkpoint, "fingerprint",
                           "header carries no sweep fingerprint");
            }
            if (!header.has("slots") || !header.at("slots").isNumber())
                report.add(checkpoint, "slots",
                           "header carries no slot count");
        }
    }

    std::string stats = dir + "/stats.json";
    if (fs::exists(stats)) {
        guarded(report, stats, "", [&] {
            store::StoreStats::fromJson(JsonValue::parseFile(stats));
        });
    }

    std::string results = dir + "/results.json";
    if (fs::exists(results)) {
        JsonValue doc;
        if (guarded(report, results, "",
                    [&] { doc = JsonValue::parseFile(results); }))
            checkFormatHeader(report, results, doc);
    }

    // A persisted query must deserialize under the full StoreQuery
    // vocabulary (unknown keys, unknown metrics, and malformed
    // clauses are all fatal there).
    std::string query = dir + "/query.json";
    if (fs::exists(query)) {
        guarded(report, query, "", [&] {
            store::StoreQuery::fromJson(JsonValue::parseFile(query));
        });
    }
    return report;
}

namespace {

/** The fingerprint a store journal's header claims, or "" when the
 *  header is absent/unparseable (lintStoreDir reports those). */
std::string
journalFingerprint(const std::string &dir)
{
    std::ifstream in(dir + "/checkpoint.jsonl");
    std::string line;
    JsonValue header;
    if (!in || !std::getline(in, line) ||
        !JsonValue::tryParse(line, header) || !header.isObject() ||
        !header.has("fingerprint") ||
        !header.at("fingerprint").isString())
        return "";
    return header.at("fingerprint").asString();
}

/** shard.json checks beyond what the lenient loader tolerates: when
 *  the file exists it must be a consistent record of this shard of
 *  this campaign. */
void
checkShardState(LintReport &report, const std::string &path,
                const campaign::CampaignManifest &manifest,
                std::size_t shard)
{
    JsonValue doc;
    if (!guarded(report, path, "",
                 [&] { doc = JsonValue::parseFile(path); }))
        return;
    if (!doc.isObject()) {
        report.add(path, "", "shard state must be a JSON object");
        return;
    }
    checkFormatHeader(report, path, doc);
    if (!doc.has("fingerprint") ||
        !doc.at("fingerprint").isString() ||
        doc.at("fingerprint").asString() != manifest.fingerprint) {
        report.add(path, "fingerprint",
                   "does not match the campaign fingerprint " +
                       manifest.fingerprint);
    }
    if (!doc.has("shard") || !doc.at("shard").isNumber() ||
        (std::size_t)doc.at("shard").asNumber() != shard) {
        report.add(path, "shard",
                   "must be this shard's id " + std::to_string(shard));
    }
    if (!doc.has("shard_count") ||
        !doc.at("shard_count").isNumber() ||
        (std::size_t)doc.at("shard_count").asNumber() !=
            manifest.shardCount) {
        report.add(path, "shard_count",
                   "must be the campaign's shard count " +
                       std::to_string(manifest.shardCount));
    }
    if (!doc.has("attempts") || !doc.at("attempts").isNumber() ||
        doc.at("attempts").asNumber() < 0)
        report.add(path, "attempts",
                   "must be a non-negative attempt count");
    if (!doc.has("completed") || !doc.at("completed").isBool())
        report.add(path, "completed", "must be a boolean");
}

} // namespace

LintReport
lintCampaignDir(const std::string &dir)
{
    LintReport report;
    ++report.checked;

    std::string manifestPath = dir + "/campaign.json";
    campaign::CampaignManifest manifest;
    // fromJson carries the format/fingerprint/shard-table validation;
    // the guard turns each fatal into a diagnostic.
    if (!guarded(report, manifestPath, "",
                 [&] { manifest = campaign::loadManifest(dir); }))
        return report;

    std::set<std::string> shardDirs;
    for (const auto &shard : manifest.shards) {
        std::string key = "shards[" + std::to_string(shard.id) + "]";
        if (!shardDirs.insert(shard.dir).second)
            report.add(manifestPath, key,
                       "duplicate shard dir '" + shard.dir + "'");
        std::string shardDir = dir + "/" + shard.dir;
        if (!fs::is_directory(shardDir)) {
            // A pending shard legitimately has no store yet; any
            // other status claims work that left no artifacts.
            if (shard.status != "pending")
                report.add(manifestPath, key,
                           "status '" + shard.status +
                               "' but shard dir '" + shardDir +
                               "' is missing");
            continue;
        }
        report.merge(lintStoreDir(shardDir));
        std::string claimed = journalFingerprint(shardDir);
        if (!claimed.empty() && claimed != manifest.fingerprint) {
            report.add(shardDir + "/checkpoint.jsonl", "fingerprint",
                       "journal fingerprint " + claimed +
                           " does not match the campaign fingerprint " +
                           manifest.fingerprint);
        }
        std::string state = shardDir + "/shard.json";
        if (fs::exists(state))
            checkShardState(report, state, manifest, shard.id);
    }

    std::string merged = dir + "/merged";
    if (fs::is_directory(merged)) {
        report.merge(lintStoreDir(merged));
        std::string claimed = journalFingerprint(merged);
        if (!claimed.empty() && claimed != manifest.fingerprint) {
            report.add(merged + "/checkpoint.jsonl", "fingerprint",
                       "merged fingerprint " + claimed +
                           " does not match the campaign fingerprint " +
                           manifest.fingerprint);
        }
    }

    if (fs::exists(dir + "/config.json"))
        report.merge(lintConfigFile(dir + "/config.json"));
    return report;
}

LintReport
lintRegistries()
{
    LintReport report;
    const std::string reg = "<metric-registry>";
    ++report.checked;

    const auto &registry = metrics::MetricRegistry::instance();
    for (const auto &name : registry.names()) {
        const metrics::Metric *m = registry.find(name);
        if (!m) {
            report.add(reg, name, "names() entry does not resolve");
            continue;
        }
        if (m->unit.empty())
            report.add(reg, name, "metric has no unit string");
        if (m->description.empty())
            report.add(reg, name, "metric has no description");
        if (!m->eval)
            report.add(reg, name, "metric has no eval accessor");
        if (m->cost < 0)
            report.add(reg, name, "metric has negative cost rank");
    }

    // results.csv schema: every column is either one of the identity
    // columns documented in store/result_store.hh or backed by a
    // registered metric; headers are unique and non-empty.
    {
        const std::string csv = "<results.csv-schema>";
        ++report.checked;
        static const std::set<std::string> identity = {
            "cell",     "tech",       "traffic",
            "capacity_bytes", "word_bits", "node_nm",
            "ecc_scheme", "scrub_interval_sec",
        };
        std::set<std::string> seen;
        for (const auto &column : store::resultCsvColumns()) {
            if (column.header.empty()) {
                report.add(csv, "", "column with empty header");
                continue;
            }
            if (!seen.insert(column.header).second)
                report.add(csv, column.header, "duplicate column header");
            if (column.metric.empty()) {
                if (!identity.count(column.header))
                    report.add(csv, column.header,
                               "identity column not in the documented "
                               "identity set");
            } else if (!registry.find(column.metric)) {
                report.add(csv, column.header,
                           "backing metric '" + column.metric +
                               "' is not registered");
            }
        }
    }

    // Dashboard schema: same invariants for runExperiment's table.
    {
        const std::string dash = "<dashboard-schema>";
        ++report.checked;
        static const std::set<std::string> identity = {
            "Cell", "Traffic", "Viable", "ECC", "Scrub[s]",
        };
        std::set<std::string> seen;
        for (const auto &column : dashboardColumns()) {
            if (column.header.empty()) {
                report.add(dash, "", "column with empty header");
                continue;
            }
            if (!seen.insert(column.header).second)
                report.add(dash, column.header,
                           "duplicate column header");
            if (column.metric.empty()) {
                if (!identity.count(column.header))
                    report.add(dash, column.header,
                               "identity column not in the documented "
                               "identity set");
            } else if (!registry.find(column.metric)) {
                report.add(dash, column.header,
                           "backing metric '" + column.metric +
                               "' is not registered");
            }
            if (column.scale <= 0.0)
                report.add(dash, column.header,
                           "non-positive display scale");
        }
    }

    // Workload registry: sorted unique non-empty names.
    {
        const std::string wl = "<workload-registry>";
        ++report.checked;
        auto names = workload::WorkloadRegistry::instance().names();
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i].empty())
                report.add(wl, "", "workload with empty name");
            if (i && names[i] == names[i - 1])
                report.add(wl, names[i], "duplicate workload name");
        }
    }

    // ECC scheme table: unique names, sane codeword geometry, and a
    // findEccScheme() that resolves each entry to itself.
    {
        const std::string ecc = "<ecc-schemes>";
        ++report.checked;
        std::set<std::string> seen;
        for (const auto &scheme : reliability::eccSchemes()) {
            if (scheme.name.empty()) {
                report.add(ecc, "", "scheme with empty name");
                continue;
            }
            if (!seen.insert(scheme.name).second)
                report.add(ecc, scheme.name, "duplicate scheme name");
            if (scheme.dataBits <= 0 ||
                scheme.codeBits < scheme.dataBits)
                report.add(ecc, scheme.name,
                           "codeword geometry invalid (data " +
                               std::to_string(scheme.dataBits) +
                               ", code " +
                               std::to_string(scheme.codeBits) + ")");
            if (scheme.correctable < 0)
                report.add(ecc, scheme.name,
                           "negative correctable-error count");
            if (reliability::findEccScheme(scheme.name) != &scheme)
                report.add(ecc, scheme.name,
                           "findEccScheme does not resolve to this "
                           "entry");
        }
    }
    return report;
}

LintReport
lintTree(const std::string &root)
{
    LintReport report = lintRegistries();

    auto jsonFilesIn = [](const std::string &dir) {
        std::vector<std::string> files;
        if (fs::is_directory(dir))
            for (const auto &entry : fs::directory_iterator(dir))
                if (entry.is_regular_file() &&
                    entry.path().extension() == ".json")
                    files.push_back(entry.path().string());
        std::sort(files.begin(), files.end());
        return files;
    };

    for (const auto &path : jsonFilesIn(root + "/config"))
        report.merge(lintConfigFile(path));
    for (const auto &path : jsonFilesIn(root + "/tests/data"))
        report.merge(lintGoldenFile(path));

    // Committed benchmark snapshots at the repo root (BENCH_*.json):
    // the perf gate normalizes every CI comparison against them, so a
    // malformed snapshot quietly poisons the gate.
    {
        std::vector<std::string> benches;
        if (fs::is_directory(root)) {
            for (const auto &entry : fs::directory_iterator(root)) {
                const std::string name =
                    entry.path().filename().string();
                // Freshly measured files (BENCH_*.fresh.json) are
                // CI-transient, not committed snapshots; skip them so
                // a workspace with gate leftovers still lints clean.
                if (entry.is_regular_file() &&
                    name.rfind("BENCH_", 0) == 0 &&
                    name.find(".fresh.") == std::string::npos &&
                    entry.path().extension() == ".json")
                    benches.push_back(entry.path().string());
            }
        }
        std::sort(benches.begin(), benches.end());
        for (const auto &path : benches)
            report.merge(lintBenchFile(path));
    }

    // Store and campaign directories under tests/data (fixtures for
    // the resume, query, and campaign tiers, when present). A
    // campaign dir owns its nested shard/merged stores, so it is
    // never also linted as a plain store.
    std::string data = root + "/tests/data";
    if (fs::is_directory(data)) {
        std::vector<std::string> stores;
        std::vector<std::string> campaigns;
        for (const auto &entry : fs::directory_iterator(data)) {
            if (!entry.is_directory())
                continue;
            if (fs::exists(entry.path() / "campaign.json"))
                campaigns.push_back(entry.path().string());
            else if (fs::exists(entry.path() / "checkpoint.jsonl") ||
                     fs::exists(entry.path() / "stats.json"))
                stores.push_back(entry.path().string());
        }
        std::sort(stores.begin(), stores.end());
        for (const auto &dir : stores)
            report.merge(lintStoreDir(dir));
        std::sort(campaigns.begin(), campaigns.end());
        for (const auto &dir : campaigns)
            report.merge(lintCampaignDir(dir));
    }
    return report;
}

} // namespace lint
} // namespace nvmexp
