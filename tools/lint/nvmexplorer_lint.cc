/**
 * @file
 * nvmexplorer_lint CLI: run the static cross-reference checks and
 * exit nonzero when anything is off. CI runs `nvmexplorer_lint --all`
 * from the repo root; individual artifacts can be checked directly:
 *
 *   nvmexplorer_lint --all [--root DIR]
 *   nvmexplorer_lint --config config/llc_refine_study.json
 *   nvmexplorer_lint --golden tests/data/golden_sweep.json
 *   nvmexplorer_lint --store /path/to/store-dir
 *   nvmexplorer_lint --campaign /path/to/campaign-dir
 *   nvmexplorer_lint --bench BENCH_sweep.json
 *   nvmexplorer_lint --registries
 */

#include <cstring>
#include <iostream>
#include <string>

#include "lint.hh"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [--root DIR] --all\n"
        << "       " << argv0 << " [--config FILE | --golden FILE |"
        << " --store DIR |\n"
        << "        " << std::string(std::strlen(argv0), ' ')
        << " --campaign DIR | --bench FILE | --registries]...\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nvmexp::lint;

    std::string root = ".";
    LintReport report;
    bool ranAnything = false;

    // First pass picks up --root wherever it appears, so check order
    // on the command line never matters.
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--root")) {
            if (++i >= argc)
                return usage(argv[0]);
            root = argv[i];
        }
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root") {
            ++i;  // consumed above
        } else if (arg == "--all") {
            report.merge(lintTree(root));
            ranAnything = true;
        } else if (arg == "--registries") {
            report.merge(lintRegistries());
            ranAnything = true;
        } else if (arg == "--config" || arg == "--golden" ||
                   arg == "--store" || arg == "--campaign" ||
                   arg == "--bench") {
            if (++i >= argc)
                return usage(argv[0]);
            if (arg == "--config")
                report.merge(lintConfigFile(argv[i]));
            else if (arg == "--golden")
                report.merge(lintGoldenFile(argv[i]));
            else if (arg == "--store")
                report.merge(lintStoreDir(argv[i]));
            else if (arg == "--bench")
                report.merge(lintBenchFile(argv[i]));
            else
                report.merge(lintCampaignDir(argv[i]));
            ranAnything = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (!ranAnything)
        return usage(argv[0]);

    report.print(std::cerr);
    if (report.clean()) {
        std::cout << "nvmexplorer_lint: " << report.checked
                  << " artifact(s) clean\n";
        return 0;
    }
    std::cerr << "nvmexplorer_lint: " << report.diagnostics.size()
              << " problem(s) across " << report.checked
              << " artifact(s)\n";
    return 1;
}
