/**
 * @file
 * nvmexplorer_lint: static cross-reference checks over the repo's
 * artifacts, driven by the real registries (metrics, workloads, ECC
 * schemes) rather than a parallel list that could drift.
 *
 * Four check families:
 *
 *   configs     every config JSON file parses, uses only known top-level
 *               keys, references only registered metrics / workloads /
 *               ECC schemes in its constraint, pareto, top_k, workload
 *               and reliability sections, and passes the full
 *               loadExperiment() validation
 *   registries  the metric registry is internally consistent (unique
 *               sorted keys, unit + description + eval present), and
 *               every results.csv and dashboard column is either a
 *               known identity column or backed by a registered metric
 *   goldens     golden result files carry the current store format
 *               version and decode end to end
 *   stores      store directories carry a current-format,
 *               fingerprint-parseable checkpoint header and readable
 *               stats/results artifacts
 *
 * Checks collect diagnostics instead of exiting: load-time fatal()s
 * are converted to FatalError via ScopedFatalThrows and reported with
 * the file and config key they came from.
 */

#ifndef NVMEXP_TOOLS_LINT_LINT_HH
#define NVMEXP_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nvmexp {
namespace lint {

/** One finding: the artifact, the key/section inside it, and what is
 *  wrong. `key` is empty for whole-file problems (parse errors). */
struct LintDiagnostic
{
    std::string file;     ///< artifact path (or "<registry>")
    std::string key;      ///< offending key/section, "" for whole-file
    std::string message;  ///< what is wrong, with known-name context
};

/** Accumulated findings across one or more checks. */
struct LintReport
{
    std::vector<LintDiagnostic> diagnostics;
    std::size_t checked = 0;  ///< artifacts examined

    bool clean() const { return diagnostics.empty(); }

    void add(std::string file, std::string key, std::string message);
    void merge(const LintReport &other);

    /** One line per diagnostic: "file: [key] message". */
    void print(std::ostream &out) const;
};

/** Lint one experiment config JSON file. */
LintReport lintConfigFile(const std::string &path);

/** Lint one golden result file ({"format": v, "results": [...]}). */
LintReport lintGoldenFile(const std::string &path);

/** Lint one committed google-benchmark snapshot (BENCH_*.json):
 *  exactly the fields tools/bench_gate.py consumes — a context with a
 *  usable CPU count, iteration rows with unique names, finite
 *  real_time values in a known time unit, and the scalar/batched
 *  reference benchmarks the gate normalizes against. */
LintReport lintBenchFile(const std::string &path);

/** Lint one result-store directory (checkpoint.jsonl header,
 *  stats.json, results.json format). */
LintReport lintStoreDir(const std::string &dir);

/** Lint one campaign directory: campaign.json (format versions,
 *  fingerprint, shard-table consistency), every shard store
 *  (lintStoreDir + journal/shard.json fingerprint cross-checks
 *  against the manifest), the merged store, and the snapshotted
 *  config.json. */
LintReport lintCampaignDir(const std::string &dir);

/** Lint the built-in registries and the CSV/dashboard schemas. */
LintReport lintRegistries();

/** The --all sweep over a repo checkout: registries plus
 *  JSON files under <root>/config and <root>/tests/data, and any store
 *  directory found under <root>/tests/data. */
LintReport lintTree(const std::string &root);

} // namespace lint
} // namespace nvmexp

#endif // NVMEXP_TOOLS_LINT_LINT_HH
