/**
 * @file
 * Command-line front-end: `nvmexplorer_cli config/<study>.json` runs
 * the configured design sweep and prints the dashboard table — the
 * C++ analog of the original release's `python run.py <config>`.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace nvmexp;

namespace {

void
usage()
{
    std::cout <<
        "usage: nvmexplorer_cli [-q] [--jobs N] <config.json> "
        "[more configs...]\n"
        "\n"
        "Runs the design sweep(s) described by the JSON config(s) and\n"
        "prints the results table. See config/README-style samples in\n"
        "the repository's config/ directory.\n"
        "  -q         suppress informational warnings\n"
        "  --jobs N   worker threads for the sweep cross product\n"
        "             (0 = all hardware threads; default 1); a config's\n"
        "             own \"jobs\" key overrides this\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-' &&
           std::strcmp(argv[argi], "-") != 0) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
            ++argi;
        } else if (std::strcmp(argv[argi], "--jobs") == 0 ||
                   std::strcmp(argv[argi], "-j") == 0) {
            if (argi + 1 >= argc)
                fatal("--jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                jobs > ThreadPool::kMaxThreads || jobs < 0) {
                fatal("--jobs: '", argv[argi + 1],
                      "' must be an integer in [0, ",
                      ThreadPool::kMaxThreads, "]");
            }
            setDefaultSweepJobs((int)jobs);
            argi += 2;
        } else if (std::strcmp(argv[argi], "--help") == 0 ||
                   std::strcmp(argv[argi], "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    for (; argi < argc; ++argi) {
        ExperimentConfig config = loadExperimentFile(argv[argi]);
        inform("running experiment '", config.name, "' (",
               config.sweep.cells.size(), " cells x ",
               config.sweep.capacitiesBytes.size(), " capacities x ",
               config.sweep.targets.size(), " targets x ",
               config.sweep.traffics.size(), " traffic patterns, ",
               ThreadPool::resolveJobs(config.sweep.jobs), " jobs)");
        Table table = runExperiment(config);
        table.print(std::cout);
        if (!config.outputCsv.empty())
            inform("wrote ", config.outputCsv);
    }
    return 0;
}
