/**
 * @file
 * Command-line front-end: `nvmexplorer_cli config/<study>.json` runs
 * the configured design sweep and prints the dashboard table — the
 * C++ analog of the original release's `python run.py <config>`.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "metrics/constraints.hh"
#include "metrics/metric.hh"
#include "metrics/refine.hh"
#include "reliability/reliability.hh"
#include "serve/server.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/workload.hh"

using namespace nvmexp;

namespace {

void
usage()
{
    std::cout <<
        "usage: nvmexplorer_cli [-q] [--jobs N] [--out DIR] [--resume]\n"
        "                       [--no-batch] [--filter EXPR]...\n"
        "                       [--pareto METRICS] [--top K METRIC]\n"
        "                       <config.json> [more configs...]\n"
        "       nvmexplorer_cli query --store DIR [--filter EXPR]...\n"
        "                       [--pareto METRICS] [--top K METRIC]\n"
        "                       [--query FILE]\n"
        "       nvmexplorer_cli serve --store DIR [--port N] [--jobs N]\n"
        "\n"
        "Runs the design sweep(s) described by the JSON config(s) and\n"
        "prints the results table. See config/README-style samples in\n"
        "the repository's config/ directory.\n"
        "  -q         suppress informational warnings\n"
        "  --jobs N   worker threads for the sweep cross product\n"
        "             (0 = all hardware threads; default 1); a config's\n"
        "             own \"jobs\" key overrides this\n"
        "  --out DIR  persist results.json/.csv, the characterization\n"
        "             cache, and a checkpoint journal under DIR (one\n"
        "             subdirectory per experiment when several configs\n"
        "             are given); a config's own \"out_dir\" key\n"
        "             overrides this\n"
        "  --resume   continue an interrupted sweep from DIR's\n"
        "             checkpoint journal (results are byte-identical\n"
        "             to an uninterrupted run)\n"
        "  --no-batch evaluate the sweep per point instead of in\n"
        "             batches (slower reference path; results are\n"
        "             bit-identical either way)\n"
        "  --filter 'METRIC<BOUND'\n"
        "             keep only rows satisfying the clause (repeatable,\n"
        "             ANDed; operators < <= > >= == !=); appended to a\n"
        "             config's own \"constraints\"\n"
        "  --pareto METRIC,METRIC[,METRIC...]\n"
        "             reduce to the N-D Pareto front over the named\n"
        "             metrics (overrides a config's \"pareto\" key)\n"
        "  --top K METRIC\n"
        "             keep the K best rows under the metric (overrides\n"
        "             a config's \"top_k\" key)\n"
        "  --list-metrics\n"
        "             print the metric vocabulary --filter/--pareto/\n"
        "             --top and \"constraints\"/\"pareto\"/\"top_k\"\n"
        "             config keys accept, then exit\n"
        "  --list-workloads\n"
        "             print the registered workload generators and\n"
        "             their parameter schemas, then exit\n"
        "  --list-ecc\n"
        "             print the ECC schemes a config's\n"
        "             \"reliability\"/\"ecc\" block accepts, then\n"
        "             exit\n"
        "\n"
        "The `query` subcommand applies a filter/Pareto/top-k pipeline\n"
        "to a persisted store offline and prints the matching rows in\n"
        "the results.json wire format (byte-identical to what `serve`\n"
        "answers for the same query). --query FILE reads a serialized\n"
        "query.json instead of flags.\n"
        "\n"
        "The `serve` subcommand answers the same queries over HTTP:\n"
        "POST /query (StoreQuery JSON body), GET /healthz, GET /statz,\n"
        "POST /reload (or SIGHUP) to re-index a rewritten store.\n";
}

/** `--list-metrics`: the registry is the single source of truth for
 *  the names --filter/--pareto/--top and the "constraints"/"pareto"/
 *  "top_k" config keys accept. */
void
listMetrics()
{
    auto &registry = metrics::MetricRegistry::instance();
    for (const auto &name : registry.names()) {
        const metrics::Metric &m = *registry.find(name);
        std::cout << name << " [" << m.unit << "] ("
                  << metrics::directionName(m.direction) << "): "
                  << m.description << "\n";
    }
}

/** `--list-workloads`: the registry is the single source of truth for
 *  what a config's {"workloads": [...]} section may name. */
void
listWorkloads()
{
    auto &registry = workload::WorkloadRegistry::instance();
    for (const auto &name : registry.names()) {
        const workload::Workload &w = *registry.find(name);
        std::cout << name << " — " << w.description() << "\n";
        for (const auto &p : w.schema()) {
            std::cout << "    " << p.key << " ("
                      << workload::paramKindName(p.kind)
                      << (p.required ? ", required" : "") << "): "
                      << p.description << "\n";
        }
    }
}

/** `--list-ecc`: the scheme vocabulary the "reliability"/"ecc" config
 *  block accepts; the reliability metrics derive from these. */
void
listEcc()
{
    for (const auto &scheme : reliability::eccSchemes()) {
        std::cout << scheme.name << " [" << scheme.codeBits << ","
                  << scheme.dataBits << "] corrects "
                  << scheme.correctable << ": " << scheme.description
                  << "\n";
    }
}

/** Parsed common flags of the `query`/`serve` subcommands. */
struct StoreCommandArgs
{
    std::string storeDir;
    std::string queryFile;  ///< `query` only: serialized query.json
    int port = 0;
    int jobs = 4;
    store::StoreQuery query;
    bool queryFlagsUsed = false;  ///< --filter/--pareto/--top present
};

/** Parse argv[argi..] for `query`/`serve`; fatal on bad flags. */
StoreCommandArgs
parseStoreCommand(const char *command, int argc, char **argv, int argi,
                  bool isServe)
{
    StoreCommandArgs out;
    for (; argi < argc; ++argi) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
        } else if (std::strcmp(argv[argi], "--store") == 0) {
            if (argi + 1 >= argc)
                fatal(command, ": --store needs a directory");
            out.storeDir = argv[++argi];
        } else if (isServe && std::strcmp(argv[argi], "--port") == 0) {
            if (argi + 1 >= argc)
                fatal("serve: --port needs a port number");
            errno = 0;
            char *end = nullptr;
            long port = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                port < 0 || port > 65535) {
                fatal("serve: --port '", argv[argi + 1],
                      "' must be an integer in [0, 65535]");
            }
            out.port = (int)port;
            ++argi;
        } else if (isServe && (std::strcmp(argv[argi], "--jobs") == 0 ||
                               std::strcmp(argv[argi], "-j") == 0)) {
            if (argi + 1 >= argc)
                fatal("serve: --jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                jobs < 1 || !ThreadPool::jobsInRange((double)jobs)) {
                fatal("serve: --jobs '", argv[argi + 1],
                      "' must be an integer in [1, ",
                      ThreadPool::kMaxThreads, "]");
            }
            out.jobs = (int)jobs;
            ++argi;
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--query") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --query needs a file");
            out.queryFile = argv[++argi];
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--filter") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --filter needs a 'metric<bound' clause");
            out.query.constraints.add(argv[argi + 1], "--filter");
            out.queryFlagsUsed = true;
            ++argi;
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--pareto") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --pareto needs a comma-separated metric "
                      "list");
            std::string list = argv[argi + 1];
            out.query.paretoMetrics.clear();
            for (std::size_t begin = 0; begin <= list.size();) {
                std::size_t comma = list.find(',', begin);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string name = list.substr(begin, comma - begin);
                if (name.empty())
                    fatal("--pareto: empty metric name in '", list, "'");
                metrics::MetricRegistry::instance().require(name,
                                                            "--pareto");
                out.query.paretoMetrics.push_back(name);
                begin = comma + 1;
            }
            out.queryFlagsUsed = true;
            ++argi;
        } else if (!isServe && std::strcmp(argv[argi], "--top") == 0) {
            if (argi + 2 >= argc)
                fatal("query: --top needs a count and a metric name");
            errno = 0;
            char *end = nullptr;
            long k = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                k < 1) {
                fatal("--top: '", argv[argi + 1],
                      "' must be a positive integer");
            }
            out.query.topMetric = argv[argi + 2];
            metrics::MetricRegistry::instance().require(
                out.query.topMetric, "--top");
            out.query.topK = (std::size_t)k;
            out.queryFlagsUsed = true;
            argi += 2;
        } else {
            fatal(command, ": unknown argument '", argv[argi],
                  "' (see --help)");
        }
    }
    if (out.storeDir.empty())
        fatal(command, ": --store DIR is required");
    return out;
}

/** `nvmexplorer_cli query`: the offline comparator for the server —
 *  prints store::serializeResults of the matching rows, so a served
 *  /query response can be byte-diffed against it. */
int
runQueryCommand(int argc, char **argv, int argi)
{
    StoreCommandArgs args =
        parseStoreCommand("query", argc, argv, argi, false);
    if (!args.queryFile.empty()) {
        if (args.queryFlagsUsed) {
            fatal("query: --query FILE replaces the "
                  "--filter/--pareto/--top flags; pass one or the "
                  "other");
        }
        args.query = store::StoreQuery::fromJson(
            JsonValue::parseFile(args.queryFile));
    }
    std::cout << store::serializeResults(
        store::queryStore(args.storeDir, args.query));
    return 0;
}

/** `nvmexplorer_cli serve`: sweep-as-a-service over one store. */
int
runServeCommand(int argc, char **argv, int argi)
{
    StoreCommandArgs args =
        parseStoreCommand("serve", argc, argv, argi, true);
    serve::ServeOptions options;
    options.storeDir = args.storeDir;
    options.port = args.port;
    options.jobs = args.jobs;
    serve::QueryServer server(options);
    std::string error;
    if (!server.start(error))
        fatal("serve: ", error);
    serve::QueryServer::installSighupHandler();
    inform("serving store '", args.storeDir, "' on port ",
           server.port(), " (", server.index()->rows(),
           " rows, fingerprint ", server.index()->fingerprint(),
           "); POST /query, GET /healthz, GET /statz, POST /reload");
    server.run();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "query") == 0)
        return runQueryCommand(argc, argv, 2);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServeCommand(argc, argv, 2);
    int argi = 1;
    std::string outDir;
    bool resume = false;
    bool noBatch = false;
    // Refine flags, validated eagerly so a typo'd metric name fails
    // before any simulation runs.
    metrics::ConstraintSet cliFilter;
    std::vector<std::string> cliPareto;
    std::string cliTopMetric;
    std::size_t cliTopK = 0;
    while (argi < argc && argv[argi][0] == '-' &&
           std::strcmp(argv[argi], "-") != 0) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
            ++argi;
        } else if (std::strcmp(argv[argi], "--filter") == 0) {
            if (argi + 1 >= argc)
                fatal("--filter needs a 'metric<bound' clause");
            cliFilter.add(argv[argi + 1], "--filter");
            argi += 2;
        } else if (std::strcmp(argv[argi], "--pareto") == 0) {
            if (argi + 1 >= argc)
                fatal("--pareto needs a comma-separated metric list");
            std::string list = argv[argi + 1];
            cliPareto.clear();
            for (std::size_t begin = 0; begin <= list.size();) {
                std::size_t comma = list.find(',', begin);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string name = list.substr(begin, comma - begin);
                if (name.empty())
                    fatal("--pareto: empty metric name in '", list, "'");
                metrics::MetricRegistry::instance().require(name,
                                                            "--pareto");
                cliPareto.push_back(name);
                begin = comma + 1;
            }
            argi += 2;
        } else if (std::strcmp(argv[argi], "--top") == 0) {
            if (argi + 2 >= argc)
                fatal("--top needs a count and a metric name");
            errno = 0;
            char *end = nullptr;
            long k = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                k < 1) {
                fatal("--top: '", argv[argi + 1],
                      "' must be a positive integer");
            }
            cliTopMetric = argv[argi + 2];
            metrics::MetricRegistry::instance().require(cliTopMetric,
                                                        "--top");
            cliTopK = (std::size_t)k;
            argi += 3;
        } else if (std::strcmp(argv[argi], "--jobs") == 0 ||
                   std::strcmp(argv[argi], "-j") == 0) {
            if (argi + 1 >= argc)
                fatal("--jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                !ThreadPool::jobsInRange((double)jobs)) {
                fatal("--jobs: '", argv[argi + 1],
                      "' must be an integer in [0, ",
                      ThreadPool::kMaxThreads, "]");
            }
            setDefaultSweepJobs((int)jobs);
            argi += 2;
        } else if (std::strcmp(argv[argi], "--out") == 0 ||
                   std::strcmp(argv[argi], "-o") == 0) {
            if (argi + 1 >= argc)
                fatal("--out needs a directory");
            outDir = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--resume") == 0) {
            resume = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--no-batch") == 0) {
            noBatch = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--list-metrics") == 0) {
            listMetrics();
            return 0;
        } else if (std::strcmp(argv[argi], "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        } else if (std::strcmp(argv[argi], "--list-ecc") == 0) {
            listEcc();
            return 0;
        } else if (std::strcmp(argv[argi], "--help") == 0 ||
                   std::strcmp(argv[argi], "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    // --out wins over the environment fallback (both only apply to
    // configs without their own "out_dir" key).
    if (outDir.empty())
        outDir = defaultSweepStoreDir();
    const bool multipleConfigs = argc - argi > 1;
    std::set<std::string> usedSubdirs;
    for (; argi < argc; ++argi) {
        ExperimentConfig config = loadExperimentFile(argv[argi]);
        // The CLI flags fill in store settings a config didn't pin
        // down itself; several experiments sharing one --out each get
        // their own subdirectory (a store holds one sweep at a time),
        // made unique even when experiment names repeat or collide
        // with an earlier name's "-N" suffix.
        if (!outDir.empty() && config.sweep.outDir.empty()) {
            std::string sub = config.name;
            for (int n = 2; !usedSubdirs.insert(sub).second; ++n)
                sub = config.name + "-" + std::to_string(n);
            config.sweep.outDir =
                multipleConfigs ? outDir + "/" + sub : outDir;
        }
        if (resume)
            config.sweep.resume = true;
        // Unlike --out/--resume, --no-batch overrides even a config's
        // own "batch": true — it exists to force the per-point
        // reference path when validating a batched-path suspicion.
        if (noBatch)
            config.sweep.batch = false;
        if (config.sweep.resume && config.sweep.outDir.empty()) {
            fatal("--resume needs a store: pass --out or set "
                  "\"out_dir\" in the config");
        }
        // Refine flags layer onto the config's own pipeline: --filter
        // clauses are ANDed after the config's constraints, while
        // --pareto/--top override the corresponding keys outright.
        for (const auto &clause : cliFilter.clauses())
            config.constraints.add(clause);
        if (!cliFilter.empty())
            config.applyConstraints = true;
        if (!cliPareto.empty())
            config.paretoMetrics = cliPareto;
        if (!cliTopMetric.empty()) {
            config.topMetric = cliTopMetric;
            config.topK = cliTopK;
        }
        inform("running experiment '", config.name, "' (",
               config.sweep.cells.size(), " cells x ",
               config.sweep.capacitiesBytes.size(), " capacities x ",
               config.sweep.targets.size(), " targets x ",
               config.sweep.traffics.size(), " traffic patterns + ",
               config.sweep.workloads.size(), " workloads, ",
               ThreadPool::resolveJobs(config.sweep.jobs), " jobs)");
        Table table = runExperiment(config);
        table.print(std::cout);
        if (!config.outputCsv.empty())
            inform("wrote ", config.outputCsv);
        if (!config.sweep.outDir.empty()) {
            // Persist the refine pipeline next to the results it was
            // applied to: query.json round-trips through
            // StoreQuery::fromJson, so the exact dashboard view can
            // be reproduced offline from the store alone.
            if (config.applyConstraints ||
                !config.paretoMetrics.empty() ||
                !config.topMetric.empty()) {
                store::StoreQuery query;
                query.constraints = config.constraints;
                query.paretoMetrics = config.paretoMetrics;
                query.topMetric = config.topMetric;
                query.topK = config.topK;
                query.toJson().writeFile(config.sweep.outDir +
                                         "/query.json");
            }
            store::StoreStats stats =
                store::loadStats(config.sweep.outDir);
            inform("result store '", config.sweep.outDir,
                   "': cache hits ", stats.cacheHits, "/",
                   stats.cacheLookups(), ", checkpoint slots reused ",
                   stats.checkpointLoaded, ", computed ",
                   stats.checkpointComputed);
        }
    }
    return 0;
}
