/**
 * @file
 * Command-line front-end: `nvmexplorer_cli config/<study>.json` runs
 * the configured design sweep and prints the dashboard table — the
 * C++ analog of the original release's `python run.py <config>`.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/workload.hh"

using namespace nvmexp;

namespace {

void
usage()
{
    std::cout <<
        "usage: nvmexplorer_cli [-q] [--jobs N] [--out DIR] [--resume]\n"
        "                       <config.json> [more configs...]\n"
        "\n"
        "Runs the design sweep(s) described by the JSON config(s) and\n"
        "prints the results table. See config/README-style samples in\n"
        "the repository's config/ directory.\n"
        "  -q         suppress informational warnings\n"
        "  --jobs N   worker threads for the sweep cross product\n"
        "             (0 = all hardware threads; default 1); a config's\n"
        "             own \"jobs\" key overrides this\n"
        "  --out DIR  persist results.json/.csv, the characterization\n"
        "             cache, and a checkpoint journal under DIR (one\n"
        "             subdirectory per experiment when several configs\n"
        "             are given); a config's own \"out_dir\" key\n"
        "             overrides this\n"
        "  --resume   continue an interrupted sweep from DIR's\n"
        "             checkpoint journal (results are byte-identical\n"
        "             to an uninterrupted run)\n"
        "  --list-workloads\n"
        "             print the registered workload generators and\n"
        "             their parameter schemas, then exit\n";
}

/** `--list-workloads`: the registry is the single source of truth for
 *  what a config's {"workloads": [...]} section may name. */
void
listWorkloads()
{
    auto &registry = workload::WorkloadRegistry::instance();
    for (const auto &name : registry.names()) {
        const workload::Workload &w = *registry.find(name);
        std::cout << name << " — " << w.description() << "\n";
        for (const auto &p : w.schema()) {
            std::cout << "    " << p.key << " ("
                      << workload::paramKindName(p.kind)
                      << (p.required ? ", required" : "") << "): "
                      << p.description << "\n";
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int argi = 1;
    std::string outDir;
    bool resume = false;
    while (argi < argc && argv[argi][0] == '-' &&
           std::strcmp(argv[argi], "-") != 0) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
            ++argi;
        } else if (std::strcmp(argv[argi], "--jobs") == 0 ||
                   std::strcmp(argv[argi], "-j") == 0) {
            if (argi + 1 >= argc)
                fatal("--jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                !ThreadPool::jobsInRange((double)jobs)) {
                fatal("--jobs: '", argv[argi + 1],
                      "' must be an integer in [0, ",
                      ThreadPool::kMaxThreads, "]");
            }
            setDefaultSweepJobs((int)jobs);
            argi += 2;
        } else if (std::strcmp(argv[argi], "--out") == 0 ||
                   std::strcmp(argv[argi], "-o") == 0) {
            if (argi + 1 >= argc)
                fatal("--out needs a directory");
            outDir = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--resume") == 0) {
            resume = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        } else if (std::strcmp(argv[argi], "--help") == 0 ||
                   std::strcmp(argv[argi], "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    // --out wins over the environment fallback (both only apply to
    // configs without their own "out_dir" key).
    if (outDir.empty())
        outDir = defaultSweepStoreDir();
    const bool multipleConfigs = argc - argi > 1;
    std::set<std::string> usedSubdirs;
    for (; argi < argc; ++argi) {
        ExperimentConfig config = loadExperimentFile(argv[argi]);
        // The CLI flags fill in store settings a config didn't pin
        // down itself; several experiments sharing one --out each get
        // their own subdirectory (a store holds one sweep at a time),
        // made unique even when experiment names repeat or collide
        // with an earlier name's "-N" suffix.
        if (!outDir.empty() && config.sweep.outDir.empty()) {
            std::string sub = config.name;
            for (int n = 2; !usedSubdirs.insert(sub).second; ++n)
                sub = config.name + "-" + std::to_string(n);
            config.sweep.outDir =
                multipleConfigs ? outDir + "/" + sub : outDir;
        }
        if (resume)
            config.sweep.resume = true;
        if (config.sweep.resume && config.sweep.outDir.empty()) {
            fatal("--resume needs a store: pass --out or set "
                  "\"out_dir\" in the config");
        }
        inform("running experiment '", config.name, "' (",
               config.sweep.cells.size(), " cells x ",
               config.sweep.capacitiesBytes.size(), " capacities x ",
               config.sweep.targets.size(), " targets x ",
               config.sweep.traffics.size(), " traffic patterns + ",
               config.sweep.workloads.size(), " workloads, ",
               ThreadPool::resolveJobs(config.sweep.jobs), " jobs)");
        Table table = runExperiment(config);
        table.print(std::cout);
        if (!config.outputCsv.empty())
            inform("wrote ", config.outputCsv);
        if (!config.sweep.outDir.empty()) {
            store::StoreStats stats =
                store::loadStats(config.sweep.outDir);
            inform("result store '", config.sweep.outDir,
                   "': cache hits ", stats.cacheHits, "/",
                   stats.cacheLookups(), ", checkpoint slots reused ",
                   stats.checkpointLoaded, ", computed ",
                   stats.checkpointComputed);
        }
    }
    return 0;
}
