/**
 * @file
 * Command-line front-end: `nvmexplorer_cli config/<study>.json` runs
 * the configured design sweep and prints the dashboard table — the
 * C++ analog of the original release's `python run.py <config>`.
 */

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"
#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "metrics/constraints.hh"
#include "metrics/metric.hh"
#include "metrics/refine.hh"
#include "reliability/reliability.hh"
#include "serve/server.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/workload.hh"

using namespace nvmexp;

namespace {

void
usage()
{
    std::cout <<
        "usage: nvmexplorer_cli [-q] [--jobs N] [--out DIR] [--resume]\n"
        "                       [--no-batch] [--filter EXPR]...\n"
        "                       [--pareto METRICS] [--top K METRIC]\n"
        "                       <config.json> [more configs...]\n"
        "       nvmexplorer_cli query --store DIR [--filter EXPR]...\n"
        "                       [--pareto METRICS] [--top K METRIC]\n"
        "                       [--query FILE]\n"
        "       nvmexplorer_cli serve --store DIR [--port N] [--jobs N]\n"
        "       nvmexplorer_cli campaign plan --dir DIR --config FILE\n"
        "                       [--shards N]\n"
        "       nvmexplorer_cli campaign run --dir DIR --shard K/N\n"
        "                       [--jobs N]\n"
        "       nvmexplorer_cli campaign launch --dir DIR [--workers N]\n"
        "                       [--jobs N] [--retries N] [--pin]\n"
        "       nvmexplorer_cli campaign merge --dir DIR\n"
        "       nvmexplorer_cli campaign status --dir DIR\n"
        "\n"
        "Runs the design sweep(s) described by the JSON config(s) and\n"
        "prints the results table. See config/README-style samples in\n"
        "the repository's config/ directory.\n"
        "  -q         suppress informational warnings\n"
        "  --jobs N   worker threads for the sweep cross product\n"
        "             (0 = all hardware threads; default 1); a config's\n"
        "             own \"jobs\" key overrides this\n"
        "  --out DIR  persist results.json/.csv, the characterization\n"
        "             cache, and a checkpoint journal under DIR (one\n"
        "             subdirectory per experiment when several configs\n"
        "             are given); a config's own \"out_dir\" key\n"
        "             overrides this\n"
        "  --resume   continue an interrupted sweep from DIR's\n"
        "             checkpoint journal (results are byte-identical\n"
        "             to an uninterrupted run)\n"
        "  --no-batch evaluate the sweep per point instead of in\n"
        "             batches (slower reference path; results are\n"
        "             bit-identical either way)\n"
        "  --filter 'METRIC<BOUND'\n"
        "             keep only rows satisfying the clause (repeatable,\n"
        "             ANDed; operators < <= > >= == !=); appended to a\n"
        "             config's own \"constraints\"\n"
        "  --pareto METRIC,METRIC[,METRIC...]\n"
        "             reduce to the N-D Pareto front over the named\n"
        "             metrics (overrides a config's \"pareto\" key)\n"
        "  --top K METRIC\n"
        "             keep the K best rows under the metric (overrides\n"
        "             a config's \"top_k\" key)\n"
        "  --list-metrics\n"
        "             print the metric vocabulary --filter/--pareto/\n"
        "             --top and \"constraints\"/\"pareto\"/\"top_k\"\n"
        "             config keys accept, then exit\n"
        "  --list-workloads\n"
        "             print the registered workload generators and\n"
        "             their parameter schemas, then exit\n"
        "  --list-ecc\n"
        "             print the ECC schemes a config's\n"
        "             \"reliability\"/\"ecc\" block accepts, then\n"
        "             exit\n"
        "\n"
        "The `query` subcommand applies a filter/Pareto/top-k pipeline\n"
        "to a persisted store offline and prints the matching rows in\n"
        "the results.json wire format (byte-identical to what `serve`\n"
        "answers for the same query). --query FILE reads a serialized\n"
        "query.json instead of flags.\n"
        "\n"
        "The `serve` subcommand answers the same queries over HTTP:\n"
        "POST /query (StoreQuery JSON body), GET /healthz, GET /statz,\n"
        "POST /reload (or SIGHUP) to re-index a rewritten store.\n"
        "\n"
        "The `campaign` subcommands shard one sweep across worker\n"
        "processes. `plan` writes DIR/campaign.json and snapshots the\n"
        "config; `run` evaluates one shard (kill-safe: a retry resumes\n"
        "from the shard's journal); `launch` forks one local worker\n"
        "per shard (--workers bounds concurrency, --pin pins workers\n"
        "round-robin to CPU sets, crashed shards retry up to --retries\n"
        "attempts); `merge` validates every shard and splices them\n"
        "into DIR/merged, byte-identical to a single-process --out\n"
        "run; `status` prints per-shard progress.\n";
}

/** `--list-metrics`: the registry is the single source of truth for
 *  the names --filter/--pareto/--top and the "constraints"/"pareto"/
 *  "top_k" config keys accept. */
void
listMetrics()
{
    auto &registry = metrics::MetricRegistry::instance();
    for (const auto &name : registry.names()) {
        const metrics::Metric &m = *registry.find(name);
        std::cout << name << " [" << m.unit << "] ("
                  << metrics::directionName(m.direction) << "): "
                  << m.description << "\n";
    }
}

/** `--list-workloads`: the registry is the single source of truth for
 *  what a config's {"workloads": [...]} section may name. */
void
listWorkloads()
{
    auto &registry = workload::WorkloadRegistry::instance();
    for (const auto &name : registry.names()) {
        const workload::Workload &w = *registry.find(name);
        std::cout << name << " — " << w.description() << "\n";
        for (const auto &p : w.schema()) {
            std::cout << "    " << p.key << " ("
                      << workload::paramKindName(p.kind)
                      << (p.required ? ", required" : "") << "): "
                      << p.description << "\n";
        }
    }
}

/** `--list-ecc`: the scheme vocabulary the "reliability"/"ecc" config
 *  block accepts; the reliability metrics derive from these. */
void
listEcc()
{
    for (const auto &scheme : reliability::eccSchemes()) {
        std::cout << scheme.name << " [" << scheme.codeBits << ","
                  << scheme.dataBits << "] corrects "
                  << scheme.correctable << ": " << scheme.description
                  << "\n";
    }
}

/** Parsed common flags of the `query`/`serve` subcommands. */
struct StoreCommandArgs
{
    std::string storeDir;
    std::string queryFile;  ///< `query` only: serialized query.json
    int port = 0;
    int jobs = 4;
    store::StoreQuery query;
    bool queryFlagsUsed = false;  ///< --filter/--pareto/--top present
};

/** Parse argv[argi..] for `query`/`serve`; fatal on bad flags. */
StoreCommandArgs
parseStoreCommand(const char *command, int argc, char **argv, int argi,
                  bool isServe)
{
    StoreCommandArgs out;
    for (; argi < argc; ++argi) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
        } else if (std::strcmp(argv[argi], "--store") == 0) {
            if (argi + 1 >= argc)
                fatal(command, ": --store needs a directory");
            out.storeDir = argv[++argi];
        } else if (isServe && std::strcmp(argv[argi], "--port") == 0) {
            if (argi + 1 >= argc)
                fatal("serve: --port needs a port number");
            errno = 0;
            char *end = nullptr;
            long port = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                port < 0 || port > 65535) {
                fatal("serve: --port '", argv[argi + 1],
                      "' must be an integer in [0, 65535]");
            }
            out.port = (int)port;
            ++argi;
        } else if (isServe && (std::strcmp(argv[argi], "--jobs") == 0 ||
                               std::strcmp(argv[argi], "-j") == 0)) {
            if (argi + 1 >= argc)
                fatal("serve: --jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                jobs < 1 || !ThreadPool::jobsInRange((double)jobs)) {
                fatal("serve: --jobs '", argv[argi + 1],
                      "' must be an integer in [1, ",
                      ThreadPool::kMaxThreads, "]");
            }
            out.jobs = (int)jobs;
            ++argi;
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--query") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --query needs a file");
            out.queryFile = argv[++argi];
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--filter") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --filter needs a 'metric<bound' clause");
            out.query.constraints.add(argv[argi + 1], "--filter");
            out.queryFlagsUsed = true;
            ++argi;
        } else if (!isServe &&
                   std::strcmp(argv[argi], "--pareto") == 0) {
            if (argi + 1 >= argc)
                fatal("query: --pareto needs a comma-separated metric "
                      "list");
            std::string list = argv[argi + 1];
            out.query.paretoMetrics.clear();
            for (std::size_t begin = 0; begin <= list.size();) {
                std::size_t comma = list.find(',', begin);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string name = list.substr(begin, comma - begin);
                if (name.empty())
                    fatal("--pareto: empty metric name in '", list, "'");
                metrics::MetricRegistry::instance().require(name,
                                                            "--pareto");
                out.query.paretoMetrics.push_back(name);
                begin = comma + 1;
            }
            out.queryFlagsUsed = true;
            ++argi;
        } else if (!isServe && std::strcmp(argv[argi], "--top") == 0) {
            if (argi + 2 >= argc)
                fatal("query: --top needs a count and a metric name");
            errno = 0;
            char *end = nullptr;
            long k = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                k < 1) {
                fatal("--top: '", argv[argi + 1],
                      "' must be a positive integer");
            }
            out.query.topMetric = argv[argi + 2];
            metrics::MetricRegistry::instance().require(
                out.query.topMetric, "--top");
            out.query.topK = (std::size_t)k;
            out.queryFlagsUsed = true;
            argi += 2;
        } else {
            fatal(command, ": unknown argument '", argv[argi],
                  "' (see --help)");
        }
    }
    if (out.storeDir.empty())
        fatal(command, ": --store DIR is required");
    return out;
}

/** `nvmexplorer_cli query`: the offline comparator for the server —
 *  prints store::serializeResults of the matching rows, so a served
 *  /query response can be byte-diffed against it. */
int
runQueryCommand(int argc, char **argv, int argi)
{
    StoreCommandArgs args =
        parseStoreCommand("query", argc, argv, argi, false);
    if (!args.queryFile.empty()) {
        if (args.queryFlagsUsed) {
            fatal("query: --query FILE replaces the "
                  "--filter/--pareto/--top flags; pass one or the "
                  "other");
        }
        args.query = store::StoreQuery::fromJson(
            JsonValue::parseFile(args.queryFile));
    }
    std::cout << store::serializeResults(
        store::queryStore(args.storeDir, args.query));
    return 0;
}

/** `nvmexplorer_cli serve`: sweep-as-a-service over one store. */
int
runServeCommand(int argc, char **argv, int argi)
{
    StoreCommandArgs args =
        parseStoreCommand("serve", argc, argv, argi, true);
    serve::ServeOptions options;
    options.storeDir = args.storeDir;
    options.port = args.port;
    options.jobs = args.jobs;
    serve::QueryServer server(options);
    std::string error;
    if (!server.start(error))
        fatal("serve: ", error);
    serve::QueryServer::installSighupHandler();
    inform("serving store '", args.storeDir, "' on port ",
           server.port(), " (", server.index()->rows(),
           " rows, fingerprint ", server.index()->fingerprint(),
           "); POST /query, GET /healthz, GET /statz, POST /reload");
    server.run();
    return 0;
}

/** strtol with the CLI's usual full-string + range validation. */
long
parseCount(const char *command, const char *flag, const char *text,
           long lo, long hi)
{
    errno = 0;
    char *end = nullptr;
    long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno != 0 || value < lo ||
        value > hi) {
        fatal(command, ": ", flag, " '", text,
              "' must be an integer in [", lo, ", ", hi, "]");
    }
    return value;
}

/** Parsed flags of the `campaign` subcommands. */
struct CampaignArgs
{
    std::string dir;
    std::string configFile;
    std::size_t shards = 0;      ///< plan: --shards
    std::size_t shard = 0;       ///< run: K of --shard K/N
    std::size_t shardCount = 0;  ///< run: N of --shard K/N
    bool shardSet = false;
    int jobs = 0;
    bool jobsSet = false;
    std::size_t workers = 0;     ///< launch: 0 = one per shard
    std::uint64_t retries = 3;   ///< launch: per-shard attempt budget
    bool pin = false;            ///< launch: pin workers to CPU sets
};

CampaignArgs
parseCampaignArgs(const std::string &command, int argc, char **argv,
                  int argi)
{
    const char *cmd = command.c_str();
    CampaignArgs out;
    for (; argi < argc; ++argi) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
        } else if (std::strcmp(argv[argi], "--dir") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --dir needs a campaign directory");
            out.dir = argv[++argi];
        } else if (command == "campaign plan" &&
                   std::strcmp(argv[argi], "--config") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --config needs a config file");
            out.configFile = argv[++argi];
        } else if (command == "campaign plan" &&
                   std::strcmp(argv[argi], "--shards") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --shards needs a shard count");
            out.shards = (std::size_t)parseCount(
                cmd, "--shards", argv[argi + 1], 1, 4096);
            ++argi;
        } else if (command == "campaign run" &&
                   std::strcmp(argv[argi], "--shard") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --shard needs K/N (e.g. 0/4)");
            std::string spec = argv[argi + 1];
            std::size_t slash = spec.find('/');
            if (slash == std::string::npos || slash == 0 ||
                slash + 1 >= spec.size()) {
                fatal(cmd, ": --shard '", spec,
                      "' must be K/N (e.g. 0/4)");
            }
            out.shardCount = (std::size_t)parseCount(
                cmd, "--shard", spec.substr(slash + 1).c_str(), 1,
                4096);
            out.shard = (std::size_t)parseCount(
                cmd, "--shard", spec.substr(0, slash).c_str(), 0,
                (long)out.shardCount - 1);
            out.shardSet = true;
            ++argi;
        } else if ((command == "campaign run" ||
                    command == "campaign launch") &&
                   (std::strcmp(argv[argi], "--jobs") == 0 ||
                    std::strcmp(argv[argi], "-j") == 0)) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --jobs needs a thread count");
            out.jobs = (int)parseCount(cmd, "--jobs", argv[argi + 1],
                                       0, ThreadPool::kMaxThreads);
            out.jobsSet = true;
            ++argi;
        } else if (command == "campaign launch" &&
                   std::strcmp(argv[argi], "--workers") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --workers needs a process count");
            out.workers = (std::size_t)parseCount(
                cmd, "--workers", argv[argi + 1], 1, 4096);
            ++argi;
        } else if (command == "campaign launch" &&
                   std::strcmp(argv[argi], "--retries") == 0) {
            if (argi + 1 >= argc)
                fatal(cmd, ": --retries needs an attempt budget");
            out.retries = (std::uint64_t)parseCount(
                cmd, "--retries", argv[argi + 1], 1, 1000);
            ++argi;
        } else if (command == "campaign launch" &&
                   std::strcmp(argv[argi], "--pin") == 0) {
            out.pin = true;
        } else {
            fatal(cmd, ": unknown argument '", argv[argi],
                  "' (see --help)");
        }
    }
    if (out.dir.empty())
        fatal(cmd, ": --dir DIR is required");
    return out;
}

/** Load the campaign's snapshotted config (written by `plan`). */
ExperimentConfig
loadCampaignConfig(const std::string &dir)
{
    std::string path = dir + "/config.json";
    ExperimentConfig config = loadExperimentFile(path);
    // Shard stores live under the campaign directory; a config
    // out_dir was already warned about (and ignored) at plan time.
    config.sweep.outDir.clear();
    return config;
}

int
runCampaignCommand(int argc, char **argv, int argi)
{
    if (argi >= argc) {
        fatal("campaign: needs a subcommand: plan, run, launch, "
              "merge, or status");
    }
    std::string sub = argv[argi++];

    if (sub == "plan") {
        CampaignArgs args =
            parseCampaignArgs("campaign plan", argc, argv, argi);
        if (args.configFile.empty())
            fatal("campaign plan: --config FILE is required");
        ExperimentConfig config =
            loadExperimentFile(args.configFile);
        if (!config.sweep.outDir.empty()) {
            warn("campaign plan: config \"out_dir\" is ignored; "
                 "shard stores live under '", args.dir, "'");
            config.sweep.outDir.clear();
        }
        std::size_t shards =
            args.shards ? args.shards : config.campaignShards;
        if (shards == 0) {
            fatal("campaign plan: pass --shards N or give the config "
                  "a \"campaign\": {\"shards\": N} block");
        }
        campaign::CampaignManifest manifest =
            campaign::planCampaign(args.dir, config.sweep, shards);
        // Snapshot the config bytes verbatim so workers and the merge
        // see exactly the planned sweep even if the original file is
        // edited later.
        std::ifstream in(args.configFile);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        if (!in) {
            fatal("campaign plan: cannot re-read '", args.configFile,
                  "'");
        }
        std::ofstream snapshot(args.dir + "/config.json");
        snapshot << bytes.str();
        if (!snapshot.flush()) {
            fatal("campaign plan: cannot write '", args.dir,
                  "/config.json'");
        }
        inform("campaign '", args.dir, "': fingerprint ",
               manifest.fingerprint, ", ", manifest.shardCount,
               " shards, granularity ", manifest.granularity,
               " slots; run `campaign launch --dir ", args.dir,
               "` or one `campaign run --shard K/",
               manifest.shardCount, "` per shard");
        return 0;
    }

    if (sub == "run") {
        CampaignArgs args =
            parseCampaignArgs("campaign run", argc, argv, argi);
        if (!args.shardSet)
            fatal("campaign run: --shard K/N is required");
        campaign::CampaignManifest manifest =
            campaign::loadManifest(args.dir);
        if (args.shardCount != manifest.shardCount) {
            fatal("campaign run: --shard names ", args.shardCount,
                  " shards, the campaign has ", manifest.shardCount);
        }
        ExperimentConfig config = loadCampaignConfig(args.dir);
        if (args.jobsSet)
            config.sweep.jobs = args.jobs;
        ParallelSweepRunner runner(config.sweep.jobs);
        auto rows = campaign::runShard(args.dir, config.sweep,
                                       args.shard, runner);
        inform("campaign run: shard ", args.shard, "/",
               manifest.shardCount, " complete (", rows.size(),
               " slots)");
        return 0;
    }

    if (sub == "launch") {
        CampaignArgs args =
            parseCampaignArgs("campaign launch", argc, argv, argi);
        campaign::CampaignManifest manifest =
            campaign::loadManifest(args.dir);
        // Each worker is a fresh `campaign run` process image: exec
        // keeps the forked child free of this process's state (and is
        // exactly what a cluster launcher would spawn per node).
        std::string shardCount =
            std::to_string(manifest.shardCount);
        campaign::ShardWorker worker =
            [&args, &shardCount](std::size_t shard) {
                std::string shardSpec =
                    std::to_string(shard) + "/" + shardCount;
                std::vector<const char *> childArgv = {
                    "nvmexplorer_cli", "campaign", "run",
                    "--dir", args.dir.c_str(),
                    "--shard", shardSpec.c_str()};
                std::string jobs = std::to_string(args.jobs);
                if (args.jobsSet) {
                    childArgv.push_back("--jobs");
                    childArgv.push_back(jobs.c_str());
                }
                if (isQuiet())
                    childArgv.push_back("-q");
                childArgv.push_back(nullptr);
                ::execv("/proc/self/exe",
                        const_cast<char *const *>(childArgv.data()));
                return 127; // exec failed
            };
        campaign::LaunchOptions options;
        options.workers = args.workers;
        options.maxAttempts = args.retries;
        options.pinCpus = args.pin;
        if (!campaign::launchCampaign(args.dir, options, worker)) {
            fatal("campaign launch: not all shards completed (see "
                  "warnings above; `campaign status --dir ", args.dir,
                  "` for details)");
        }
        inform("campaign launch: all ", manifest.shardCount,
               " shards complete; run `campaign merge --dir ",
               args.dir, "`");
        return 0;
    }

    if (sub == "merge") {
        CampaignArgs args =
            parseCampaignArgs("campaign merge", argc, argv, argi);
        campaign::CampaignManifest manifest =
            campaign::loadManifest(args.dir);
        // Guard against a config.json edited after plan: the shard
        // stores carry the planned fingerprint, so a drifted config
        // is a user error worth naming before the per-shard checks.
        ExperimentConfig config = loadCampaignConfig(args.dir);
        campaign::ShardPlan plan = campaign::makeShardPlan(
            config.sweep, manifest.shardCount);
        if (plan.fingerprint != manifest.fingerprint) {
            fatal("campaign merge: '", args.dir, "/config.json' now "
                  "fingerprints to ", plan.fingerprint,
                  ", the campaign was planned for ",
                  manifest.fingerprint,
                  " (config edited after `campaign plan`?)");
        }
        campaign::MergeSummary summary =
            campaign::mergeCampaign(args.dir);
        inform("campaign merge: ", summary.totalSlots,
               " slots from ", summary.shardCount,
               " shards merged into '", campaign::mergedDir(args.dir),
               "' (fingerprint ", manifest.fingerprint, ")");
        return 0;
    }

    if (sub == "status") {
        CampaignArgs args =
            parseCampaignArgs("campaign status", argc, argv, argi);
        campaign::CampaignStatus status =
            campaign::campaignStatus(args.dir);
        std::cout << "campaign " << args.dir << ": fingerprint "
                  << status.manifest.fingerprint << ", "
                  << status.manifest.shardCount
                  << " shards, granularity "
                  << status.manifest.granularity << "\n";
        for (const auto &shard : status.shards) {
            std::cout << "  shard " << shard.shard << ": "
                      << shard.state << ", " << shard.doneSlots;
            if (shard.ownedSlots)
                std::cout << "/" << shard.ownedSlots;
            std::cout << " slots journaled, " << shard.attempts
                      << " attempt(s)\n";
        }
        std::cout << "  merged: " << (status.merged ? "yes" : "no")
                  << "\n";
        return status.allComplete() ? 0 : 1;
    }

    fatal("campaign: unknown subcommand '", sub,
          "' (plan, run, launch, merge, or status)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "query") == 0)
        return runQueryCommand(argc, argv, 2);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return runServeCommand(argc, argv, 2);
    if (argc > 1 && std::strcmp(argv[1], "campaign") == 0)
        return runCampaignCommand(argc, argv, 2);
    int argi = 1;
    std::string outDir;
    bool resume = false;
    bool noBatch = false;
    // Refine flags, validated eagerly so a typo'd metric name fails
    // before any simulation runs.
    metrics::ConstraintSet cliFilter;
    std::vector<std::string> cliPareto;
    std::string cliTopMetric;
    std::size_t cliTopK = 0;
    while (argi < argc && argv[argi][0] == '-' &&
           std::strcmp(argv[argi], "-") != 0) {
        if (std::strcmp(argv[argi], "-q") == 0) {
            setQuiet(true);
            ++argi;
        } else if (std::strcmp(argv[argi], "--filter") == 0) {
            if (argi + 1 >= argc)
                fatal("--filter needs a 'metric<bound' clause");
            cliFilter.add(argv[argi + 1], "--filter");
            argi += 2;
        } else if (std::strcmp(argv[argi], "--pareto") == 0) {
            if (argi + 1 >= argc)
                fatal("--pareto needs a comma-separated metric list");
            std::string list = argv[argi + 1];
            cliPareto.clear();
            for (std::size_t begin = 0; begin <= list.size();) {
                std::size_t comma = list.find(',', begin);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string name = list.substr(begin, comma - begin);
                if (name.empty())
                    fatal("--pareto: empty metric name in '", list, "'");
                metrics::MetricRegistry::instance().require(name,
                                                            "--pareto");
                cliPareto.push_back(name);
                begin = comma + 1;
            }
            argi += 2;
        } else if (std::strcmp(argv[argi], "--top") == 0) {
            if (argi + 2 >= argc)
                fatal("--top needs a count and a metric name");
            errno = 0;
            char *end = nullptr;
            long k = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                k < 1) {
                fatal("--top: '", argv[argi + 1],
                      "' must be a positive integer");
            }
            cliTopMetric = argv[argi + 2];
            metrics::MetricRegistry::instance().require(cliTopMetric,
                                                        "--top");
            cliTopK = (std::size_t)k;
            argi += 3;
        } else if (std::strcmp(argv[argi], "--jobs") == 0 ||
                   std::strcmp(argv[argi], "-j") == 0) {
            if (argi + 1 >= argc)
                fatal("--jobs needs a thread count");
            errno = 0;
            char *end = nullptr;
            long jobs = std::strtol(argv[argi + 1], &end, 10);
            if (end == argv[argi + 1] || *end != '\0' || errno != 0 ||
                !ThreadPool::jobsInRange((double)jobs)) {
                fatal("--jobs: '", argv[argi + 1],
                      "' must be an integer in [0, ",
                      ThreadPool::kMaxThreads, "]");
            }
            setDefaultSweepJobs((int)jobs);
            argi += 2;
        } else if (std::strcmp(argv[argi], "--out") == 0 ||
                   std::strcmp(argv[argi], "-o") == 0) {
            if (argi + 1 >= argc)
                fatal("--out needs a directory");
            outDir = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--resume") == 0) {
            resume = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--no-batch") == 0) {
            noBatch = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--list-metrics") == 0) {
            listMetrics();
            return 0;
        } else if (std::strcmp(argv[argi], "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        } else if (std::strcmp(argv[argi], "--list-ecc") == 0) {
            listEcc();
            return 0;
        } else if (std::strcmp(argv[argi], "--help") == 0 ||
                   std::strcmp(argv[argi], "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    // --out wins over the environment fallback (both only apply to
    // configs without their own "out_dir" key).
    if (outDir.empty())
        outDir = defaultSweepStoreDir();
    const bool multipleConfigs = argc - argi > 1;
    std::set<std::string> usedSubdirs;
    for (; argi < argc; ++argi) {
        ExperimentConfig config = loadExperimentFile(argv[argi]);
        // The CLI flags fill in store settings a config didn't pin
        // down itself; several experiments sharing one --out each get
        // their own subdirectory (a store holds one sweep at a time),
        // made unique even when experiment names repeat or collide
        // with an earlier name's "-N" suffix.
        if (!outDir.empty() && config.sweep.outDir.empty()) {
            std::string sub = config.name;
            for (int n = 2; !usedSubdirs.insert(sub).second; ++n)
                sub = config.name + "-" + std::to_string(n);
            config.sweep.outDir =
                multipleConfigs ? outDir + "/" + sub : outDir;
        }
        if (resume)
            config.sweep.resume = true;
        // Unlike --out/--resume, --no-batch overrides even a config's
        // own "batch": true — it exists to force the per-point
        // reference path when validating a batched-path suspicion.
        if (noBatch)
            config.sweep.batch = false;
        if (config.sweep.resume && config.sweep.outDir.empty()) {
            fatal("--resume needs a store: pass --out or set "
                  "\"out_dir\" in the config");
        }
        // Refine flags layer onto the config's own pipeline: --filter
        // clauses are ANDed after the config's constraints, while
        // --pareto/--top override the corresponding keys outright.
        for (const auto &clause : cliFilter.clauses())
            config.constraints.add(clause);
        if (!cliFilter.empty())
            config.applyConstraints = true;
        if (!cliPareto.empty())
            config.paretoMetrics = cliPareto;
        if (!cliTopMetric.empty()) {
            config.topMetric = cliTopMetric;
            config.topK = cliTopK;
        }
        inform("running experiment '", config.name, "' (",
               config.sweep.cells.size(), " cells x ",
               config.sweep.capacitiesBytes.size(), " capacities x ",
               config.sweep.targets.size(), " targets x ",
               config.sweep.traffics.size(), " traffic patterns + ",
               config.sweep.workloads.size(), " workloads, ",
               ThreadPool::resolveJobs(config.sweep.jobs), " jobs)");
        Table table = runExperiment(config);
        table.print(std::cout);
        if (!config.outputCsv.empty())
            inform("wrote ", config.outputCsv);
        if (!config.sweep.outDir.empty()) {
            // Persist the refine pipeline next to the results it was
            // applied to: query.json round-trips through
            // StoreQuery::fromJson, so the exact dashboard view can
            // be reproduced offline from the store alone.
            if (config.applyConstraints ||
                !config.paretoMetrics.empty() ||
                !config.topMetric.empty()) {
                store::StoreQuery query;
                query.constraints = config.constraints;
                query.paretoMetrics = config.paretoMetrics;
                query.topMetric = config.topMetric;
                query.topK = config.topK;
                query.toJson().writeFile(config.sweep.outDir +
                                         "/query.json");
            }
            store::StoreStats stats =
                store::loadStats(config.sweep.outDir);
            inform("result store '", config.sweep.outDir,
                   "': cache hits ", stats.cacheHits, "/",
                   stats.cacheLookups(), ", checkpoint slots reused ",
                   stats.checkpointLoaded, ", computed ",
                   stats.checkpointComputed);
        }
    }
    return 0;
}
