/**
 * @file
 * Command-line front-end: `nvmexplorer_cli config/<study>.json` runs
 * the configured design sweep and prints the dashboard table — the
 * C++ analog of the original release's `python run.py <config>`.
 */

#include <cstring>
#include <iostream>

#include "core/config.hh"
#include "util/logging.hh"

using namespace nvmexp;

namespace {

void
usage()
{
    std::cout <<
        "usage: nvmexplorer_cli [-q] <config.json> [more configs...]\n"
        "\n"
        "Runs the design sweep(s) described by the JSON config(s) and\n"
        "prints the results table. See config/README-style samples in\n"
        "the repository's config/ directory.\n"
        "  -q   suppress informational warnings\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int argi = 1;
    if (argi < argc && std::strcmp(argv[argi], "-q") == 0) {
        setQuiet(true);
        ++argi;
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    for (; argi < argc; ++argi) {
        ExperimentConfig config = loadExperimentFile(argv[argi]);
        inform("running experiment '", config.name, "' (",
               config.sweep.cells.size(), " cells x ",
               config.sweep.capacitiesBytes.size(), " capacities x ",
               config.sweep.targets.size(), " targets x ",
               config.sweep.traffics.size(), " traffic patterns)");
        Table table = runExperiment(config);
        table.print(std::cout);
        if (!config.outputCsv.empty())
            inform("wrote ", config.outputCsv);
    }
    return 0;
}
