/**
 * @file
 * nvmexp-fatal-context: flags fatal() calls whose message carries no
 * context, in the modules whose fatals report on user-supplied files.
 *
 * The lint diagnostic convention (tools/lint) is "file: [key]
 * message" — a fatal() fired while loading a config, store, campaign,
 * or query must name the artifact, key, or offending value so the
 * user can act on it. A fatal() built purely from string literals
 * cannot: whatever file or value triggered it is not in the message.
 * The check therefore flags calls to nvmexp::fatal() in the scoped
 * modules where every argument is a plain string literal (interpolate
 * the file, key, or got-value to satisfy it). Precondition-style
 * fatals in the math/model modules are out of scope by default — they
 * fire on programmer error, not on user input.
 */

#ifndef NVMEXP_TOOLS_TIDY_FATALCONTEXTCHECK_HH
#define NVMEXP_TOOLS_TIDY_FATALCONTEXTCHECK_HH

#include "NvmexpScopedCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class FatalContextCheck : public NvmexpScopedCheck
{
  public:
    FatalContextCheck(StringRef Name, ClangTidyContext *Context)
        : NvmexpScopedCheck(Name, Context,
                            "src/core/config;src/workload;src/store;"
                            "src/campaign;src/serve;src/metrics;"
                            "tools/lint")
    {
    }

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(
        const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_FATALCONTEXTCHECK_HH
