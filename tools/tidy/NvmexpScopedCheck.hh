/**
 * @file
 * Base class for all nvmexp-tidy checks: a ClangTidyCheck carrying the
 * shared `Modules` / `AllowFiles` scoping options (see
 * NvmexpTidyUtils.hh for their semantics). Subclasses call inScope()
 * with the location they are about to diagnose; out-of-scope and
 * allowlisted locations stay silent.
 */

#ifndef NVMEXP_TOOLS_TIDY_NVMEXPSCOPEDCHECK_HH
#define NVMEXP_TOOLS_TIDY_NVMEXPSCOPEDCHECK_HH

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

#include "NvmexpTidyUtils.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class NvmexpScopedCheck : public ClangTidyCheck
{
  public:
    NvmexpScopedCheck(StringRef Name, ClangTidyContext *Context,
                      StringRef DefaultModules)
        : ClangTidyCheck(Name, Context),
          Modules(std::string(Options.get("Modules", DefaultModules))),
          AllowFiles(std::string(Options.get("AllowFiles", "")))
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions &LangOpts) const override
    {
        return LangOpts.CPlusPlus;
    }

    void
    storeOptions(ClangTidyOptions::OptionMap &Opts) override
    {
        Options.store(Opts, "Modules", Modules);
        Options.store(Opts, "AllowFiles", AllowFiles);
    }

    /** Whether a diagnostic at `Loc` is in this check's module scope
     *  and not exempted by the config-file allowlist. */
    bool
    inScope(const SourceManager &SM, SourceLocation Loc) const
    {
        return pathInScope(locationPath(SM, Loc), Modules, AllowFiles);
    }

  protected:
    const std::string Modules;
    const std::string AllowFiles;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_NVMEXPSCOPEDCHECK_HH
