#include "RawDoubleFormatCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nvmexp {

void
RawDoubleFormatCheck::registerMatchers(MatchFinder *Finder)
{
    auto FloatingArg =
        expr(hasType(hasCanonicalType(realFloatingPointType())));

    // stream << someDouble: the member operator<< of basic_ostream
    // (argument 0 of the operator call is the stream itself).
    Finder->addMatcher(
        cxxOperatorCallExpr(
            hasOverloadedOperatorName("<<"),
            callee(cxxMethodDecl(
                ofClass(classTemplateSpecializationDecl(
                    hasName("::std::basic_ostream"))))),
            hasArgument(1, FloatingArg))
            .bind("stream"),
        this);
    // printf-family with any floating argument (floats reach the
    // varargs as doubles via default argument promotion, which the
    // canonical-type match still sees as floating).
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::printf", "::fprintf", "::sprintf", "::snprintf",
                     "::vprintf", "::vfprintf", "::vsprintf",
                     "::vsnprintf", "::dprintf"))),
                 hasAnyArgument(FloatingArg))
            .bind("printf"),
        this);
    // std::to_string(double/float/long double): fixed six-digit
    // formatting, the least round-trippable of the three.
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasName("::std::to_string"))),
                 hasArgument(0, FloatingArg))
            .bind("tostring"),
        this);
}

void
RawDoubleFormatCheck::check(const MatchFinder::MatchResult &Result)
{
    const Expr *Site = Result.Nodes.getNodeAs<Expr>("stream");
    const char *What = "operator<<";
    if (!Site) {
        Site = Result.Nodes.getNodeAs<Expr>("printf");
        What = "a printf-family call";
    }
    if (!Site) {
        Site = Result.Nodes.getNodeAs<Expr>("tostring");
        What = "std::to_string";
    }
    if (!Site || !inScope(*Result.SourceManager, Site->getBeginLoc()))
        return;
    diag(Site->getBeginLoc(),
         "formatting a double through %0 in an artifact-writing module "
         "does not round-trip; route it through util/json "
         "JsonValue::formatNumber()/dump()")
        << What;
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang
