/**
 * @file
 * Shared scoping helpers for the nvmexp-tidy checks.
 *
 * Every check is scoped by two semicolon-separated path-substring
 * options read from the clang-tidy configuration:
 *
 *   Modules     a location is in scope only when its (forward-slashed)
 *               file path contains one of these substrings; the empty
 *               list means "everywhere" (the fixture harness uses
 *               that to run checks on standalone snippets)
 *   AllowFiles  the config-file allowlist: locations whose path
 *               contains one of these substrings are exempt — the
 *               repo convention for deliberate exceptions (never a
 *               bare NOLINT)
 *
 * Substring matching (rather than globs) keeps the options readable
 * in YAML and independent of where the checkout lives.
 */

#ifndef NVMEXP_TOOLS_TIDY_NVMEXPTIDYUTILS_HH
#define NVMEXP_TOOLS_TIDY_NVMEXPTIDYUTILS_HH

#include <algorithm>
#include <string>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nvmexp {

/** Split a semicolon-separated option value, dropping empty entries. */
inline llvm::SmallVector<llvm::StringRef, 8>
splitPathList(llvm::StringRef list)
{
    llvm::SmallVector<llvm::StringRef, 8> parts;
    list.split(parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
    return parts;
}

/** Forward-slashed spelling-file path of `loc`, empty when invalid. */
inline std::string
locationPath(const SourceManager &sm, SourceLocation loc)
{
    if (loc.isInvalid())
        return {};
    std::string path = sm.getFilename(sm.getSpellingLoc(loc)).str();
    std::replace(path.begin(), path.end(), '\\', '/');
    return path;
}

/** @return whether `path` is inside `modules` and not allowlisted by
 *  `allowFiles` (both semicolon-separated substring lists; an empty
 *  `modules` list means every path is in scope). */
inline bool
pathInScope(const std::string &path, llvm::StringRef modules,
            llvm::StringRef allowFiles)
{
    if (path.empty())
        return false;
    auto moduleList = splitPathList(modules);
    bool inModules = moduleList.empty();
    for (llvm::StringRef module : moduleList) {
        if (path.find(module.str()) != std::string::npos) {
            inModules = true;
            break;
        }
    }
    if (!inModules)
        return false;
    for (llvm::StringRef allowed : splitPathList(allowFiles))
        if (path.find(allowed.str()) != std::string::npos)
            return false;
    return true;
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_NVMEXPTIDYUTILS_HH
