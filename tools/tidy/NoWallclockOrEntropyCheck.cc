#include "NoWallclockOrEntropyCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nvmexp {

void
NoWallclockOrEntropyCheck::registerMatchers(MatchFinder *Finder)
{
    // Free functions: the C wall-clock and PRNG surface, both the
    // global and the std:: declarations.
    Finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasAnyName("::time", "::std::time", "::clock",
                                "::std::clock", "::gettimeofday",
                                "::clock_gettime", "::timespec_get",
                                "::rand", "::std::rand", "::srand",
                                "::std::srand", "::random", "::srandom",
                                "::rand_r", "::getentropy"))
                     .bind("callee")))
            .bind("call"),
        this);
    // Clock now(): every std::chrono clock, monotonic ones included —
    // a steady_clock reading that escapes into an artifact is just as
    // nondeterministic as a system_clock one.
    Finder->addMatcher(
        callExpr(callee(cxxMethodDecl(
                     hasName("now"),
                     ofClass(hasAnyName(
                         "::std::chrono::system_clock",
                         "::std::chrono::steady_clock",
                         "::std::chrono::high_resolution_clock")))
                     .bind("callee")))
            .bind("call"),
        this);
    // Hardware entropy: constructing a std::random_device.
    Finder->addMatcher(
        cxxConstructExpr(
            hasType(hasCanonicalType(recordType(hasDeclaration(
                cxxRecordDecl(hasName("::std::random_device")))))))
            .bind("ctor"),
        this);
}

void
NoWallclockOrEntropyCheck::check(const MatchFinder::MatchResult &Result)
{
    if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
        if (!inScope(*Result.SourceManager, Call->getBeginLoc()))
            return;
        const auto *Callee =
            Result.Nodes.getNodeAs<FunctionDecl>("callee");
        diag(Call->getBeginLoc(),
             "call to %0 is a wall-clock/entropy source in a "
             "deterministic module; inject the value from the caller "
             "or add a config-file AllowFiles entry with a reason")
            << Callee;
        return;
    }
    if (const auto *Ctor =
            Result.Nodes.getNodeAs<CXXConstructExpr>("ctor")) {
        if (!inScope(*Result.SourceManager, Ctor->getBeginLoc()))
            return;
        diag(Ctor->getBeginLoc(),
             "std::random_device draws hardware entropy in a "
             "deterministic module; seed util/random.hh explicitly "
             "or add a config-file AllowFiles entry with a reason");
    }
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang
