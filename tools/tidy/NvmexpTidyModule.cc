/**
 * @file
 * The nvmexp-tidy clang-tidy plugin module: registers the five
 * determinism-contract checks under the `nvmexp-` prefix. Built into
 * libnvmexp-tidy.so (see CMakeLists.txt) and loaded with
 *
 *   clang-tidy --load=libnvmexp-tidy.so --checks=-*,nvmexp-* ...
 *
 * The checks' symbols resolve against the hosting clang-tidy binary
 * at load time, so the plugin must be built against the headers of
 * the exact clang-tidy version that loads it (CI pins both; see
 * fetch_clang_tidy_headers.sh).
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "FatalContextCheck.hh"
#include "MutableGlobalStateCheck.hh"
#include "NoWallclockOrEntropyCheck.hh"
#include "RawDoubleFormatCheck.hh"
#include "UnorderedResultIterationCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class NvmexpTidyModule : public ClangTidyModule
{
  public:
    void
    addCheckFactories(ClangTidyCheckFactories &CheckFactories) override
    {
        CheckFactories.registerCheck<UnorderedResultIterationCheck>(
            "nvmexp-unordered-result-iteration");
        CheckFactories.registerCheck<NoWallclockOrEntropyCheck>(
            "nvmexp-no-wallclock-or-entropy");
        CheckFactories.registerCheck<MutableGlobalStateCheck>(
            "nvmexp-mutable-global-state");
        CheckFactories.registerCheck<RawDoubleFormatCheck>(
            "nvmexp-raw-double-format");
        CheckFactories.registerCheck<FatalContextCheck>(
            "nvmexp-fatal-context");
    }
};

} // namespace nvmexp

// Static registration runs when clang-tidy dlopens the plugin.
static ClangTidyModuleRegistry::Add<nvmexp::NvmexpTidyModule>
    nvmexpTidyModuleInit("nvmexp-module",
                         "nvmexp determinism-contract checks");

} // namespace tidy
} // namespace clang
