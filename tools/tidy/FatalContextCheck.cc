#include "FatalContextCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nvmexp {

void
FatalContextCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasName("::nvmexp::fatal"))))
            .bind("call"),
        this);
}

void
FatalContextCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
    if (!Call || !inScope(*Result.SourceManager, Call->getBeginLoc()))
        return;
    for (const Expr *Arg : Call->arguments()) {
        // Any non-literal argument interpolates *something* — a file,
        // key, name, or value — which is all the convention asks.
        if (!isa<StringLiteral>(Arg->IgnoreParenImpCasts()))
            return;
    }
    diag(Call->getBeginLoc(),
         "fatal() message is built only from string literals; "
         "interpolate the offending file, key, or value so the "
         "diagnostic is actionable (lint convention: \"file: [key] "
         "message\")");
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang
