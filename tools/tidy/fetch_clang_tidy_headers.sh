#!/bin/sh
# Fetch the clang-tidy plugin-API headers into DEST/clang-tidy/.
#
# Debian/Ubuntu ship the clang-tidy binary and the clang/LLVM dev
# headers, but the clang-tidy headers themselves (clang-tools-extra)
# are not packaged. A -load plugin only needs the nine below; they
# must come from the SAME release as the clang-tidy binary that will
# load the plugin (the classes are resolved from that binary at
# dlopen time), so the tag is pinned and CI passes it explicitly.
#
# usage: fetch_clang_tidy_headers.sh DEST [TAG]
set -eu

DEST="${1:?usage: fetch_clang_tidy_headers.sh DEST [TAG]}"
TAG="${2:-llvmorg-18.1.3}"
BASE="https://raw.githubusercontent.com/llvm/llvm-project/${TAG}/clang-tools-extra/clang-tidy"

mkdir -p "${DEST}/clang-tidy"
for header in \
    ClangTidyCheck.h \
    ClangTidyDiagnosticConsumer.h \
    ClangTidyModule.h \
    ClangTidyModuleRegistry.h \
    ClangTidyOptions.h \
    ClangTidyProfiling.h \
    FileExtensionsSet.h \
    GlobList.h \
    NoLintDirectiveHandler.h; do
    echo "fetching ${TAG}/clang-tidy/${header}"
    curl -fsSL --retry 3 "${BASE}/${header}" \
        -o "${DEST}/clang-tidy/${header}"
done
echo "clang-tidy headers for ${TAG} in ${DEST}/clang-tidy"
