/**
 * @file
 * nvmexp-unordered-result-iteration: flags iteration over std
 * unordered associative containers inside result-producing modules.
 *
 * Hash-table iteration order depends on libstdc++ version, seed, and
 * insertion history — never on the data alone — so a range-for (or an
 * explicit begin()/cbegin() iterator walk) over an unordered
 * container can leak nondeterministic ordering into results.json,
 * results.csv, checkpoint journals, or served query responses. The
 * repo's byte-identity contract (same bytes across jobs, batch sizes,
 * and shard counts) therefore bans it in the modules whose output
 * escapes into artifacts; use std::map/std::set or iterate a sorted
 * copy instead.
 */

#ifndef NVMEXP_TOOLS_TIDY_UNORDEREDRESULTITERATIONCHECK_HH
#define NVMEXP_TOOLS_TIDY_UNORDEREDRESULTITERATIONCHECK_HH

#include "NvmexpScopedCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class UnorderedResultIterationCheck : public NvmexpScopedCheck
{
  public:
    UnorderedResultIterationCheck(StringRef Name,
                                  ClangTidyContext *Context)
        : NvmexpScopedCheck(
              Name, Context,
              "src/core;src/eval;src/store;src/campaign;src/serve")
    {
    }

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(
        const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_UNORDEREDRESULTITERATIONCHECK_HH
