#include "MutableGlobalStateCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nvmexp {

void
MutableGlobalStateCheck::registerMatchers(MatchFinder *Finder)
{
    // Synchronized-by-design types: owning one of these at static
    // storage is how code is *supposed* to coordinate.
    auto SyncType = hasCanonicalType(recordType(hasDeclaration(namedDecl(
        hasAnyName("::std::atomic", "::std::atomic_flag", "::std::mutex",
                   "::std::recursive_mutex", "::std::shared_mutex",
                   "::std::timed_mutex", "::std::recursive_timed_mutex",
                   "::std::once_flag", "::std::condition_variable",
                   "::std::condition_variable_any")))));

    Finder->addMatcher(
        varDecl(hasGlobalStorage(),
                unless(hasThreadStorageDuration()),
                unless(hasType(isConstQualified())),
                unless(isConstexpr()),
                unless(hasType(SyncType)),
                unless(isImplicit()),
                unless(isExpansionInSystemHeader()))
            .bind("var"),
        this);
}

void
MutableGlobalStateCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Var = Result.Nodes.getNodeAs<VarDecl>("var");
    // Only definitions: flagging `extern` redeclarations would report
    // the same variable once per including TU.
    if (!Var ||
        Var->isThisDeclarationADefinition() != VarDecl::Definition)
        return;
    if (!inScope(*Result.SourceManager, Var->getLocation()))
        return;
    for (llvm::StringRef allowed : splitPathList(AllowNames))
        if (Var->getName() == allowed)
            return;
    diag(Var->getLocation(),
         "mutable %select{global|function-local static}0 %1 can race "
         "across sweep workers and break run-to-run determinism (the "
         "lgamma/signgam hazard); make it const, atomic, or "
         "thread_local, or allowlist it with a reason")
        << (Var->isStaticLocal() ? 1 : 0) << Var;
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang
