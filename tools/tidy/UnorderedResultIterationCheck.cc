#include "UnorderedResultIterationCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nvmexp {

void
UnorderedResultIterationCheck::registerMatchers(MatchFinder *Finder)
{
    auto UnorderedDecl = classTemplateSpecializationDecl(
        hasAnyName("::std::unordered_map", "::std::unordered_set",
                   "::std::unordered_multimap",
                   "::std::unordered_multiset"));
    // hasCanonicalType sees through typedefs/using aliases; the
    // expression type of an lvalue already has references stripped.
    auto UnorderedExpr = expr(hasType(hasCanonicalType(
        recordType(hasDeclaration(UnorderedDecl)))));

    Finder->addMatcher(
        cxxForRangeStmt(hasRangeInit(UnorderedExpr.bind("range")))
            .bind("loop"),
        this);
    // Explicit iterator walks: m.begin()/m.cbegin()/m.rbegin().
    // Range-for statements desugar into hidden begin()/end() calls,
    // so exclude anything inside one to avoid double reports.
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                              "begin", "cbegin", "rbegin", "crbegin"))),
                          on(UnorderedExpr),
                          unless(hasAncestor(cxxForRangeStmt())))
            .bind("begin"),
        this);
}

void
UnorderedResultIterationCheck::check(
    const MatchFinder::MatchResult &Result)
{
    if (const auto *Loop =
            Result.Nodes.getNodeAs<CXXForRangeStmt>("loop")) {
        const auto *Range = Result.Nodes.getNodeAs<Expr>("range");
        if (!inScope(*Result.SourceManager, Loop->getForLoc()))
            return;
        diag(Loop->getForLoc(),
             "iterating unordered container %0 in a result-producing "
             "module can leak hash-table ordering into artifacts; "
             "iterate a sorted copy or use std::map/std::set")
            << Range->getType();
        return;
    }
    if (const auto *Begin =
            Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin")) {
        if (!inScope(*Result.SourceManager, Begin->getBeginLoc()))
            return;
        diag(Begin->getBeginLoc(),
             "iterator walk over unordered container %0 in a "
             "result-producing module can leak hash-table ordering "
             "into artifacts; iterate a sorted copy or use "
             "std::map/std::set")
            << Begin->getImplicitObjectArgument()->getType();
    }
}

} // namespace nvmexp
} // namespace tidy
} // namespace clang
