/**
 * @file
 * nvmexp-no-wallclock-or-entropy: flags wall-clock and entropy sources
 * in deterministic modules.
 *
 * time(), clock_gettime(), std::chrono::*_clock::now(), rand(), and
 * std::random_device all produce values that differ run to run; any
 * of them reaching an evaluation path or an artifact breaks the
 * byte-identity contract the differential tests pin. Randomized
 * behavior must flow from an explicit seed (util/random.hh) and time
 * must be injected by the caller. Deliberate uses — the serve accept
 * loop's poll timeout and its latency counters — are exempted via the
 * AllowFiles config-file allowlist, never a bare NOLINT.
 */

#ifndef NVMEXP_TOOLS_TIDY_NOWALLCLOCKORENTROPYCHECK_HH
#define NVMEXP_TOOLS_TIDY_NOWALLCLOCKORENTROPYCHECK_HH

#include "NvmexpScopedCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class NoWallclockOrEntropyCheck : public NvmexpScopedCheck
{
  public:
    NoWallclockOrEntropyCheck(StringRef Name, ClangTidyContext *Context)
        : NvmexpScopedCheck(Name, Context, "src/")
    {
    }

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(
        const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_NOWALLCLOCKORENTROPYCHECK_HH
