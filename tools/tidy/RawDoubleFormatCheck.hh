/**
 * @file
 * nvmexp-raw-double-format: flags lossy double formatting in
 * artifact-writing modules.
 *
 * Default stream/printf formatting of a double is six significant
 * digits — it does not round-trip, and it is locale- and
 * flag-sensitive. The store's byte-identity contract (results.json /
 * results.csv / checkpoint.jsonl identical across jobs, batch sizes,
 * and shard counts, cached entries deserializing bit-identically)
 * exists because every double goes through util/json's exact
 * shortest-round-trip JsonValue::formatNumber()/dump() path. This
 * check bans the raw alternatives — `stream << someDouble`,
 * printf-family calls with floating arguments, std::to_string on a
 * floating value — inside the modules that write artifacts.
 */

#ifndef NVMEXP_TOOLS_TIDY_RAWDOUBLEFORMATCHECK_HH
#define NVMEXP_TOOLS_TIDY_RAWDOUBLEFORMATCHECK_HH

#include "NvmexpScopedCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class RawDoubleFormatCheck : public NvmexpScopedCheck
{
  public:
    RawDoubleFormatCheck(StringRef Name, ClangTidyContext *Context)
        : NvmexpScopedCheck(Name, Context,
                            "src/store;src/campaign;src/serve")
    {
    }

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(
        const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_RAWDOUBLEFORMATCHECK_HH
