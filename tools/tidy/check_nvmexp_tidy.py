#!/usr/bin/env python3
"""Fixture harness for the nvmexp-tidy clang-tidy plugin.

Each fixture directory holds standalone C++ snippets plus a .clang-tidy
config enabling exactly one nvmexp-* check (and exercising its
Modules/AllowFiles/AllowNames options). Expectations are annotated in
the snippets themselves:

    int bad;  // expect: nvmexp-mutable-global-state: mutable global

    // expect+1: nvmexp-fatal-context: string literals
    fatal("no context here");

`expect` anchors to its own line, `expect+N`/`expect-N` to a nearby
line; the text after the check name must be a substring of the
diagnostic message. A fixture with no markers (the `clean-*` /
`allowed-*` snippets) asserts exact silence. The harness fails when
any expected diagnostic is missing, any unexpected nvmexp-* diagnostic
fires, or the plugin fails to register its checks.

Exit codes: 0 all fixtures behave, 1 mismatch or harness error,
77 skipped (clang-tidy or the plugin is not available — the ctest
suites map 77 to SKIPPED so default builds stay green without LLVM).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

EXPECT_RE = re.compile(
    r"//\s*expect([+-]\d+)?:\s*(nvmexp-[a-z\-]+):\s*(.*\S)")
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[^\]]+)\]\s*$",
    re.MULTILINE)

EXPECTED_CHECKS = (
    "nvmexp-unordered-result-iteration",
    "nvmexp-no-wallclock-or-entropy",
    "nvmexp-mutable-global-state",
    "nvmexp-raw-double-format",
    "nvmexp-fatal-context",
)


def skip(message):
    print(f"SKIP: {message}")
    sys.exit(77)


def parse_expectations(path):
    """[(line, check, substring)] from the fixture's expect markers."""
    expectations = []
    with open(path) as handle:
        for number, text in enumerate(handle, start=1):
            match = EXPECT_RE.search(text)
            if match:
                offset = int(match.group(1) or 0)
                expectations.append(
                    (number + offset, match.group(2), match.group(3)))
    return expectations


def run_clang_tidy(clang_tidy, plugin, source, extra_args):
    command = [clang_tidy, f"--load={plugin}", "--quiet", source,
               "--", "-std=c++17"] + extra_args
    proc = subprocess.run(command, capture_output=True, text=True)
    diagnostics = []
    for match in DIAG_RE.finditer(proc.stdout):
        if match.group("check").startswith("nvmexp-"):
            diagnostics.append((os.path.abspath(match.group("file")),
                                int(match.group("line")),
                                match.group("check"),
                                match.group("message")))
    # clang-tidy exits nonzero on WarningsAsErrors or compile errors;
    # compile errors mean a broken fixture, surface them.
    if "error: " in proc.stdout and not diagnostics:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        sys.exit(f"error: clang-tidy failed on {source}")
    return diagnostics


def check_fixture(clang_tidy, plugin, source, extra_args):
    """0 when the fixture's diagnostics match its markers, else 1."""
    expected = parse_expectations(source)
    actual = run_clang_tidy(clang_tidy, plugin, source, extra_args)
    failures = []

    unmatched = list(actual)
    for line, check, substring in expected:
        hit = next((d for d in unmatched
                    if d[1] == line and d[2] == check
                    and substring in d[3]), None)
        if hit is None:
            failures.append(
                f"missing: line {line} [{check}] ...{substring}...")
        else:
            unmatched.remove(hit)
    for _, line, check, message in unmatched:
        failures.append(f"unexpected: line {line} [{check}] {message}")

    name = os.path.basename(source)
    if failures:
        print(f"FAIL {name}")
        for failure in failures:
            print(f"  {failure}")
        return 1
    verdict = "clean" if not expected else f"{len(expected)} expected"
    print(f"ok   {name} ({verdict})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary (default %(default)s)")
    parser.add_argument("--plugin", required=True,
                        help="path to libnvmexp-tidy.so")
    parser.add_argument("--fixtures", action="append", required=True,
                        help="fixture directory (repeatable)")
    parser.add_argument("--list-checks-only", action="store_true",
                        help="only verify the plugin registers all "
                             "nvmexp-* checks")
    args = parser.parse_args()

    clang_tidy = shutil.which(args.clang_tidy)
    if clang_tidy is None:
        skip(f"'{args.clang_tidy}' not on PATH")
    if not os.path.exists(args.plugin):
        skip(f"plugin '{args.plugin}' not built "
             "(NVMEXP_BUILD_TIDY_PLUGIN=OFF?)")

    # The plugin was provided, so from here on problems are failures,
    # not skips: verify every check actually registered.
    listed = subprocess.run(
        [clang_tidy, f"--load={args.plugin}", "--checks=-*,nvmexp-*",
         "--list-checks"], capture_output=True, text=True)
    missing = [check for check in EXPECTED_CHECKS
               if check not in listed.stdout]
    if missing:
        print(listed.stdout)
        print(listed.stderr, file=sys.stderr)
        sys.exit(f"error: plugin did not register: {', '.join(missing)}")
    print(f"plugin registers {len(EXPECTED_CHECKS)} nvmexp-* checks")
    if args.list_checks_only:
        return 0

    status = 0
    total = 0
    for directory in args.fixtures:
        sources = sorted(
            entry for entry in os.listdir(directory)
            if entry.endswith((".cc", ".cpp")))
        if not sources:
            sys.exit(f"error: no fixtures in {directory}")
        for entry in sources:
            total += 1
            status |= check_fixture(clang_tidy, args.plugin,
                                    os.path.join(directory, entry), [])
    print(f"{total} fixture(s): "
          f"{'ALL BEHAVE' if status == 0 else 'MISMATCH'}")
    return status


if __name__ == "__main__":
    sys.exit(main())
