/**
 * @file
 * nvmexp-mutable-global-state: flags non-const globals and mutable
 * function-local statics in src/.
 *
 * This is PR 6's lgamma()/signgam data race promoted to a check:
 * glibc's lgamma() writes the global `signgam` on every call, which
 * raced across sweep workers until the call was rerouted through
 * lgamma_r(). Any unsynchronized mutable static is the same hazard —
 * a worker-count-dependent race that can perturb results or crash.
 *
 * Exempt by construction (not hazards of this kind):
 *   - const/constexpr declarations,
 *   - thread_local state (per-thread, cannot race),
 *   - synchronization primitives and atomics (std::atomic, mutexes,
 *     std::once_flag, condition variables).
 *
 * Deliberate exceptions (e.g. a mutex-guarded process-wide defaults
 * block) go in the AllowNames/AllowFiles config-file allowlist with a
 * reason, never behind a bare NOLINT. Note the check inspects the
 * declared variable, not what it points to: a `T *const` singleton
 * pointer passes, which is the repo's registry idiom (mutated only
 * during single-threaded registration).
 */

#ifndef NVMEXP_TOOLS_TIDY_MUTABLEGLOBALSTATECHECK_HH
#define NVMEXP_TOOLS_TIDY_MUTABLEGLOBALSTATECHECK_HH

#include "NvmexpScopedCheck.hh"

namespace clang {
namespace tidy {
namespace nvmexp {

class MutableGlobalStateCheck : public NvmexpScopedCheck
{
  public:
    MutableGlobalStateCheck(StringRef Name, ClangTidyContext *Context)
        : NvmexpScopedCheck(Name, Context, "src/"),
          AllowNames(std::string(Options.get("AllowNames", "")))
    {
    }

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(
        const ast_matchers::MatchFinder::MatchResult &Result) override;

    void
    storeOptions(ClangTidyOptions::OptionMap &Opts) override
    {
        NvmexpScopedCheck::storeOptions(Opts);
        Options.store(Opts, "AllowNames", AllowNames);
    }

  private:
    /** Semicolon-separated variable names exempted by the config-file
     *  allowlist (exact match on the unqualified name). */
    const std::string AllowNames;
};

} // namespace nvmexp
} // namespace tidy
} // namespace clang

#endif // NVMEXP_TOOLS_TIDY_MUTABLEGLOBALSTATECHECK_HH
