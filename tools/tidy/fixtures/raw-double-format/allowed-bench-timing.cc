// Allowlisted: same raw-double hazard as bad-raw-doubles.cc, but this
// file matches the AllowFiles entry ('allowed-') in the fixture
// .clang-tidy — the shape a human-readable timing log would use — so
// the check must stay silent.
#include <sstream>
#include <string>

std::string
timingLine(double seconds)
{
    std::ostringstream out;
    out << "elapsed: " << seconds << "s";
    return out.str();
}
