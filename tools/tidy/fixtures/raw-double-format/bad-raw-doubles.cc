// Known-bad: all three lossy double-formatting routes the check
// covers — ostream operator<<, the printf family, and std::to_string.
#include <cstdio>
#include <sstream>
#include <string>

std::string
renderRow(double watts)
{
    std::ostringstream out;
    // expect+1: nvmexp-raw-double-format: operator<<
    out << watts;
    return out.str();
}

void
printRow(double watts)
{
    // expect+1: nvmexp-raw-double-format: printf-family
    std::printf("%g\n", watts);
}

std::string
label(double mib)
{
    // expect+1: nvmexp-raw-double-format: std::to_string
    return std::to_string(mib);
}

void
bufferRow(char *buffer, unsigned size, float ratio)
{
    // expect+1: nvmexp-raw-double-format: printf-family
    std::snprintf(buffer, size, "%f", ratio);
}
