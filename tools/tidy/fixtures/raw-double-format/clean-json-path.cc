// Known-clean: integers and strings format losslessly, and doubles
// routed through a dedicated formatter (the util/json dump path in
// the real tree) never hit a raw formatting call in this module.
#include <cstdio>
#include <sstream>
#include <string>

std::string
renderCount(long rows)
{
    std::ostringstream out;
    out << "rows=" << rows;
    return out.str();
}

std::string
hexKey(unsigned long long hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx", hash);
    return buffer;
}

// Stands in for JsonValue::formatNumber() in the real tree.
std::string viaFormatter(double value);

std::string
renderCell(double value)
{
    return viaFormatter(value);
}
