// Known-bad: range-for over unordered containers, directly and
// through a type alias.
#include <string>
#include <unordered_map>
#include <unordered_set>

int
sumValues(const std::unordered_map<std::string, int> &counts)
{
    int total = 0;
    // expect+1: nvmexp-unordered-result-iteration: hash-table ordering
    for (const auto &entry : counts)
        total += entry.second;
    return total;
}

using Ids = std::unordered_set<int>;

int
sumAlias(const Ids &ids)
{
    int total = 0;
    // expect+1: nvmexp-unordered-result-iteration: hash-table ordering
    for (int id : ids)
        total += id;
    return total;
}
