// Allowlisted: same hazard as bad-range-for.cc, but this file matches
// the AllowFiles entry ('allowed-') in the fixture .clang-tidy, so
// the check must stay silent.
#include <string>
#include <unordered_map>

int
sumValues(const std::unordered_map<std::string, int> &counts)
{
    int total = 0;
    for (const auto &entry : counts)
        total += entry.second;
    return total;
}
