// Known-bad: explicit begin() iterator walk over an unordered map.
#include <string>
#include <unordered_map>

int
firstKeyLength(const std::unordered_map<std::string, int> &counts)
{
    // expect+1: nvmexp-unordered-result-iteration: iterator walk
    for (auto it = counts.begin(); it != counts.end(); ++it)
        return static_cast<int>(it->first.size());
    return 0;
}
