// Known-clean: ordered iteration and point lookups stay silent —
// std::map iterates deterministically, and find()/count() on an
// unordered container never exposes its ordering.
#include <map>
#include <string>
#include <unordered_map>

int
sumOrdered(const std::map<std::string, int> &counts)
{
    int total = 0;
    for (const auto &entry : counts)
        total += entry.second;
    return total;
}

int
lookupOnly(const std::unordered_map<std::string, int> &counts)
{
    auto it = counts.find("hit");
    return it == counts.end() ? 0 : it->second;
}

bool
membershipOnly(const std::unordered_map<std::string, int> &counts)
{
    return counts.count("hit") > 0;
}
