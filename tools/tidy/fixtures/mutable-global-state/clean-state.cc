// Known-clean: every exemption the check grants by construction —
// const/constexpr, atomics and sync primitives, thread_local, the
// pointer-to-registry *const idiom, and the AllowNames knob.
#include <atomic>
#include <mutex>
#include <string>

const int kLimit = 8;
constexpr double kScale = 2.0;
static const std::string kName = "nvmexp";
std::atomic<int> counter{0};
std::mutex tableMutex;
thread_local int perThreadDepth = 0;
int deliberateKnob = 1; // exempt via AllowNames in .clang-tidy

struct Registry
{
    int size = 0;
};

// The repo's registry idiom: the pointer itself is const, so the
// initialised-once singleton cannot be reseated after startup.
Registry *const globalRegistry = new Registry;

int
bump()
{
    static std::once_flag onceFlag;
    (void)onceFlag;
    static const int cached = kLimit * 2;
    std::lock_guard<std::mutex> hold(tableMutex);
    return cached + counter.fetch_add(1) + perThreadDepth +
           globalRegistry->size + deliberateKnob +
           static_cast<int>(kScale);
}
