// Known-bad: writable globals and a mutable function-local static —
// the same shape as the lgamma/signgam race fixed in the TSan PR.
#include <string>

int callCount = 0; // expect: nvmexp-mutable-global-state: mutable global

namespace {
std::string lastLabel; // expect: nvmexp-mutable-global-state: mutable global
} // namespace

int
nextTicket()
{
    // expect+1: nvmexp-mutable-global-state: function-local static
    static int ticket = 0;
    lastLabel = "ticket";
    return ++ticket + callCount;
}
