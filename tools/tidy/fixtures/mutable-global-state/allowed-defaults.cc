// Allowlisted: same mutable-global hazard as bad-globals.cc, but this
// file matches the AllowFiles entry ('allowed-') in the fixture
// .clang-tidy, so the check must stay silent.
int processDefaults = 4;

int
bumpDefaults()
{
    static int generation = 0;
    return ++generation + processDefaults;
}
