// Known-clean: explicitly seeded PRNGs and clock-free duration
// arithmetic are deterministic, so the check must stay silent.
#include <chrono>
#include <random>

unsigned
draw(unsigned seed)
{
    std::mt19937 rng(seed);
    return rng();
}

long
toNanoseconds(std::chrono::milliseconds interval)
{
    return static_cast<long>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(interval)
            .count());
}
