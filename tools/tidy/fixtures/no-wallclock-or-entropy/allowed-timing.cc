// Allowlisted: same steady_clock hazard as bad-wallclock.cc, but this
// file matches the AllowFiles entry ('allowed-') in the fixture
// .clang-tidy — mirroring how src/serve/server.cc is exempted for its
// accept timeout — so the check must stay silent.
#include <chrono>

long
acceptDeadlineNs()
{
    auto t = std::chrono::steady_clock::now();
    return static_cast<long>(t.time_since_epoch().count());
}
