// Known-bad: wall-clock reads and libc pseudo-randomness.
#include <chrono>
#include <cstdlib>
#include <ctime>

long
stamp()
{
    // expect+1: nvmexp-no-wallclock-or-entropy: wall-clock/entropy source
    return static_cast<long>(::time(nullptr));
}

double
jitter()
{
    // expect+1: nvmexp-no-wallclock-or-entropy: wall-clock/entropy source
    return std::rand() / 2.0;
}

long
wallNs()
{
    // expect+1: nvmexp-no-wallclock-or-entropy: wall-clock/entropy source
    auto t = std::chrono::system_clock::now();
    return static_cast<long>(t.time_since_epoch().count());
}

long
monotonicNs()
{
    // expect+1: nvmexp-no-wallclock-or-entropy: wall-clock/entropy source
    auto t = std::chrono::steady_clock::now();
    return static_cast<long>(t.time_since_epoch().count());
}
