// Known-bad: hardware entropy seeds results that can never be
// reproduced from the input config.
#include <random>

unsigned
hardwareSeed()
{
    // expect+1: nvmexp-no-wallclock-or-entropy: hardware entropy
    std::random_device device;
    return device();
}
