// Known-clean: fatal() calls that interpolate context, and a
// same-named function outside namespace nvmexp that the check must
// not confuse with the real one.
#include <string>

namespace nvmexp {
template <typename... Args> void fatal(const Args &...args);
}

void fatal(const char *message); // unrelated global fatal()

void
loadConfig(const std::string &path, int jobs)
{
    if (jobs < 1)
        nvmexp::fatal("config '", path, "': jobs must be positive, got ",
                      jobs);
}

void
unrelated()
{
    fatal("the global fatal() is outside the check's reach");
}
