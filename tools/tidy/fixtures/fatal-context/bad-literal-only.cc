// Known-bad: fatal() calls whose every argument is a string literal —
// the user gets no file, key, or value to act on. The stand-in
// declaration mirrors nvmexp::fatal in util/logging.hh; the check
// matches the qualified name, not the real header.
namespace nvmexp {
template <typename... Args> void fatal(const Args &...args);
}

void
loadConfig(const char *path, int jobs)
{
    if (jobs < 1) {
        // expect+1: nvmexp-fatal-context: string literals
        nvmexp::fatal("jobs must be positive");
    }
    if (!path) {
        // expect+1: nvmexp-fatal-context: string literals
        nvmexp::fatal("config: ", "missing path");
    }
}
