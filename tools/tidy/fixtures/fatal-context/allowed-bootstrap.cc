// Allowlisted: same literal-only hazard as bad-literal-only.cc, but
// this file matches the AllowFiles entry ('allowed-') in the fixture
// .clang-tidy, so the check must stay silent.
namespace nvmexp {
template <typename... Args> void fatal(const Args &...args);
}

void
bootstrap(bool ready)
{
    if (!ready)
        nvmexp::fatal("bootstrap failed before any config was read");
}
