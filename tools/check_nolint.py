#!/usr/bin/env python3
"""NOLINT hygiene gate.

Suppressing a clang-tidy diagnostic is sometimes right, but a bare
`// NOLINT` hides *which* check was judged wrong and *why*, so the
suppression can never be audited or retired. This gate enforces the
repo convention: every NOLINT directive must

  1. name the check(s) it suppresses: NOLINT(nvmexp-foo), never a
     bare NOLINT / NOLINTNEXTLINE or a wildcard NOLINT(*), and
  2. carry a trailing `// reason: ...` comment on the same line.

Example of a conforming suppression:

    steadyDeadline();  // NOLINT(nvmexp-no-wallclock-or-entropy) // reason: accept-loop timeout, never serialized

NOLINTBEGIN/END blocks are rejected outright: block suppressions
drift as code moves between the markers. Per-line directives keep the
suppression next to the code it excuses.

Scans tracked *.cc/.hh/.h/.cpp files (git ls-files); tools/tidy
fixtures are exempt because known-bad snippets are their point.
Exit 0 when clean, 1 with a file:line listing otherwise.
"""

import re
import subprocess
import sys

# Any NOLINT directive, with optional (check-list) capture.
NOLINT_RE = re.compile(
    r"//\s*(NOLINTNEXTLINE|NOLINTBEGIN|NOLINTEND|NOLINT)"
    r"(\(([^)]*)\))?")
REASON_RE = re.compile(r"//\s*reason:\s*\S")

EXEMPT_PREFIXES = ("tools/tidy/fixtures/",)
SUFFIXES = (".cc", ".cpp", ".hh", ".h")


def tracked_sources(root):
    out = subprocess.run(["git", "-C", root, "ls-files"],
                         capture_output=True, text=True, check=True)
    return [path for path in out.stdout.splitlines()
            if path.endswith(SUFFIXES)
            and not path.startswith(EXEMPT_PREFIXES)]


def check_line(text):
    """Return a complaint string for this line, or None."""
    match = NOLINT_RE.search(text)
    if not match:
        return None
    directive, parens, checks = match.groups()
    if directive in ("NOLINTBEGIN", "NOLINTEND"):
        return (f"{directive} block suppression; use a per-line "
                "NOLINT(check) // reason: ... instead")
    if not parens or not checks.strip():
        return (f"bare {directive} suppresses every check; name the "
                "check: NOLINT(check-name)")
    if "*" in checks:
        return (f"{directive}({checks.strip()}) wildcard suppresses "
                "every check; name the check explicitly")
    if not REASON_RE.search(text[match.end():]):
        return (f"{directive}({checks.strip()}) lacks a trailing "
                "`// reason: ...` comment")
    return None


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    for path in tracked_sources(root):
        with open(f"{root}/{path}", errors="replace") as handle:
            for number, text in enumerate(handle, start=1):
                complaint = check_line(text)
                if complaint:
                    failures.append(f"{path}:{number}: {complaint}")
    if failures:
        print("NOLINT hygiene violations:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("NOLINT hygiene: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
