/**
 * @file
 * Graph-accelerator example: run real BFS/PageRank/CC kernels over a
 * generated social network, extract scratchpad traffic, and rank
 * eNVMs for an 8 MB Graphicionado-style scratchpad (paper Sec. IV-B).
 */

#include <iostream>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"
#include "graph/graph.hh"
#include "graph/kernels.hh"
#include "nvsim/array_model.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    Graph g = facebookLike();
    std::cout << "graph: " << g.numVertices() << " vertices, "
              << g.numEdges() << " edges, CSR "
              << g.storageBytes() / 1e6 << " MB\n";

    GraphAccelModel accel;
    BfsResult bfsResult = bfs(g, 0);
    PageRankResult prResult = pageRank(g, 5);
    ComponentsResult ccResult = connectedComponents(g);
    std::cout << "BFS reached " << bfsResult.reached << " vertices; "
              << "CC found " << ccResult.numComponents
              << " components\n";

    struct KernelRun
    {
        const char *name;
        AccessStats stats;
    };
    const KernelRun runs[] = {
        {"BFS", bfsResult.stats},
        {"PageRank", prResult.stats},
        {"CC", ccResult.stats},
    };

    CellCatalog catalog;
    Table table("8MB scratchpad per kernel",
                {"Kernel", "Cell", "Power[mW]", "LatencyLoad",
                 "Lifetime[yr]", "Viable"});
    for (const auto &run : runs) {
        TrafficPattern traffic =
            kernelTraffic(run.name, run.stats, accel);
        for (const auto &cell : catalog.studyCells()) {
            ArrayConfig config;
            config.capacityBytes = 8.0 * 1024 * 1024;
            config.wordBits = accel.scratchWordBits;
            config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
            ArrayDesigner designer(cell, config);
            ArrayResult array = designer.optimize(OptTarget::ReadEDP);
            EvalResult ev = evaluate(array, traffic);
            table.row()
                .add(run.name)
                .add(cell.name)
                .add(ev.totalPower * 1e3)
                .add(ev.latencyLoad)
                .add(ev.lifetimeYears())
                .add(ev.viable() ? "yes" : "no");
        }
    }
    table.print(std::cout);
    return 0;
}
