/**
 * @file
 * DNN edge-accelerator example: compare eNVMs as the on-chip weight
 * buffer of an NVDLA-style accelerator, for continuous 60 FPS video
 * and for intermittent wake-per-inference deployment — the paper's
 * Sec. IV-A scenario in ~80 lines of user code.
 */

#include <iostream>

#include "celldb/tentpole.hh"
#include "dnn/networks.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    CellCatalog catalog;
    NetworkModel net = resnet26();
    std::cout << net.name << ": " << net.totalWeights() << " weights ("
              << net.weightBytes() / 1e6 << " MB int8), "
              << net.totalMacs() / 1e6 << "M MACs/inference\n";

    // Continuous 60 FPS single-task classification, weights on chip.
    DnnScenario scenario;
    scenario.network = net;
    scenario.storage = DnnStorage::WeightsOnly;
    scenario.framesPerSec = 60.0;
    TrafficPattern traffic = dnnTraffic(scenario);

    Table table("2MB weight buffer @60FPS",
                {"Cell", "Power[mW]", "Latency/frame[us]", "MeetsFPS"});
    for (const auto &cell : catalog.studyCells()) {
        ArrayConfig config;
        config.capacityBytes = 2.0 * 1024 * 1024;
        config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
        ArrayDesigner designer(cell, config);
        ArrayResult array = designer.optimize(OptTarget::ReadEDP);
        EvalResult ev = evaluate(array, traffic);
        table.row()
            .add(cell.name)
            .add(ev.totalPower * 1e3)
            .add(ev.totalAccessLatency * 1e6)
            .add(ev.viable() ? "yes" : "no");
    }
    table.print(std::cout);

    // Intermittent: one inference per wake-up, 1000 wake-ups/day.
    Table inter("Intermittent operation (1000 inferences/day)",
                {"Cell", "E/inference[uJ]", "E/day[J]", "WakeLat[ms]"});
    DnnAccessProfile profile = extractAccessProfile(scenario);
    for (const auto &cell : catalog.studyCells()) {
        ArrayConfig config;
        config.capacityBytes = 2.0 * 1024 * 1024;
        config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
        ArrayDesigner designer(cell, config);
        ArrayResult array = designer.optimize(OptTarget::ReadEDP);
        IntermittentConfig ic;
        ic.eventsPerDay = 1000.0;
        ic.readsPerEvent = profile.readWordsPerFrame;
        ic.restoreBytesOnWake = profile.footprintBytes;
        ic.computeTimePerEvent = (double)net.totalMacs() / 2e12;
        IntermittentResult ir = evaluateIntermittent(array, ic);
        inter.row()
            .add(cell.name)
            .add(ir.energyPerEvent * 1e6)
            .add(ir.energyPerDay)
            .add(ir.wakeLatency * 1e3);
    }
    inter.print(std::cout);
    return 0;
}
