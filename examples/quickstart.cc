/**
 * @file
 * Quickstart: characterize one eNVM array and evaluate it against a
 * simple traffic pattern — the minimal end-to-end NVMExplorer-CPP
 * flow (configure -> characterize -> evaluate -> inspect).
 */

#include <iostream>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    // 1. Pick a cell from the built-in tentpole catalog.
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    std::cout << "cell: " << cell.name << ", " << cell.areaF2
              << " F^2, write pulse "
              << cell.worstWritePulse() * 1e9 << " ns\n";

    // 2. Characterize a 4 MiB array at 22 nm, optimized for read EDP.
    ArrayConfig config;
    config.capacityBytes = 4.0 * 1024 * 1024;
    config.wordBits = 512;
    config.nodeNm = 22;
    ArrayDesigner designer(cell, config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);

    Table table("4MiB STT-Opt array",
                {"Metric", "Value"});
    table.row().add("read latency [ns]").add(array.readLatency * 1e9);
    table.row().add("write latency [ns]").add(array.writeLatency * 1e9);
    table.row().add("read energy [pJ]").add(array.readEnergy * 1e12);
    table.row().add("write energy [pJ]").add(array.writeEnergy * 1e12);
    table.row().add("leakage [mW]").add(array.leakage * 1e3);
    table.row().add("area [mm^2]").add(array.areaM2 * 1e6);
    table.row().add("density [Mb/mm^2]").add(array.densityMbPerMm2());
    table.print(std::cout);

    // 3. Evaluate against application traffic: 2 GB/s reads, 20 MB/s
    //    writes.
    TrafficPattern traffic =
        TrafficPattern::fromByteRates("my-workload", 2e9, 20e6, 512);
    EvalResult result = evaluate(array, traffic);

    std::cout << "total power: " << result.totalPower * 1e3 << " mW ("
              << result.dynamicPower * 1e3 << " dynamic + "
              << result.leakagePower * 1e3 << " leakage)\n"
              << "latency load: " << result.latencyLoad
              << (result.viable() ? " (meets demand)" : " (slowdown!)")
              << "\nprojected lifetime: " << result.lifetimeYears()
              << " years\n";
    return 0;
}
