/**
 * @file
 * Co-design example: extend the survey database with a hypothetical
 * device (the paper's Sec. V-A workflow with back-gated FeFETs), and
 * additionally explore an MLC variant with fault modeling — showing
 * how a device designer would evaluate a new cell across the stack.
 */

#include <iostream>

#include "celldb/survey.hh"
#include "celldb/tentpole.hh"
#include "dnn/inference.hh"
#include "eval/engine.hh"
#include "fault/fault_model.hh"
#include "fault/injector.hh"
#include "nvsim/array_model.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);

    // A device designer's projected cell: FeFET-like with a 10x
    // faster write and improved endurance.
    MemCell custom = CellCatalog::backGatedFeFET();
    custom.name = "MyFeFET";

    // Compare against the standard tentpoles at 8 MB.
    CellCatalog catalog;
    std::vector<MemCell> cells = {
        CellCatalog::sram16(),
        catalog.optimistic(CellTech::FeFET),
        custom,
    };
    TrafficPattern traffic = TrafficPattern::fromByteRates(
        "mixed", 4e9, 80e6, 64);

    Table table("Custom cell vs tentpoles (8MB, graph-like traffic)",
                {"Cell", "WriteLat[ns]", "Power[mW]", "LatencyLoad",
                 "Lifetime[yr]", "Viable"});
    for (const auto &cell : cells) {
        ArrayConfig config;
        config.capacityBytes = 8.0 * 1024 * 1024;
        config.wordBits = 64;
        config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
        ArrayDesigner designer(cell, config);
        ArrayResult array = designer.optimize(OptTarget::ReadEDP);
        EvalResult ev = evaluate(array, traffic);
        table.row()
            .add(cell.name)
            .add(array.writeLatency * 1e9)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.lifetimeYears())
            .add(ev.viable() ? "yes" : "no");
    }
    table.print(std::cout);

    // Reliability view: would a 2-bit MLC variant keep DNN accuracy?
    SyntheticTask task(32, 10, 2000, 1000, 99, 1.0);
    Mlp mlp({32, 64, 10}, 7);
    mlp.train(task, 10, 0.02);
    QuantizedMlp quantized = mlp.quantize();
    double baseline = quantized.accuracy(task.testX(), task.testY());

    Table rel("MLC reliability check", {"Cell", "BER", "Accuracy",
                                        "Baseline"});
    for (MemCell cell : {custom, custom.makeMlc()}) {
        FaultModel model(cell);
        FaultInjector injector(model, 11);
        quantized.restore();
        injector.inject(quantized.weightImage());
        double acc = quantized.accuracy(task.testX(), task.testY());
        rel.row()
            .add(cell.name)
            .add(model.bitErrorRate())
            .add(acc)
            .add(baseline);
    }
    rel.print(std::cout);

    // The survey database is user-extensible, too.
    SurveyDatabase db;
    SurveyEntry entry;
    entry.label = "MyLab-FeFET-2026";
    entry.tech = CellTech::FeFET;
    entry.venue = "VLSI";
    entry.year = 2026;
    entry.nodeNm = 22;
    entry.areaF2 = 5.0;
    entry.writePulseNs = 8.0;
    entry.endurance = 5e12;
    db.addEntry(entry);
    std::cout << "survey now holds " << db.countFor(CellTech::FeFET)
              << " FeFET publications\n";
    return 0;
}
