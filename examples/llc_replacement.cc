/**
 * @file
 * LLC-replacement example: simulate a SPEC-like benchmark through the
 * built-in L1/L2/LLC hierarchy, then ask which eNVM could replace the
 * 16 MB SRAM LLC (paper Sec. IV-C) — with constraint filtering and a
 * Pareto front over (power, latency load).
 */

#include <functional>
#include <iostream>

#include "cachesim/streams.hh"
#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "metrics/constraints.hh"
#include "metrics/refine.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    const BenchmarkProfile &profile = profileByName("gcc");
    Hierarchy::Config hconfig;
    LlcTraffic llc = runBenchmark(profile, 10'000'000, 2'000'000,
                                  hconfig);
    std::cout << profile.name << ": " << llc.llcReads << " LLC reads, "
              << llc.llcWrites << " LLC writes over " << llc.execTime
              << " s (" << llc.instructions << " instructions)\n";

    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = catalog.studyCells();
    sweep.capacitiesBytes = {16.0 * 1024 * 1024};
    sweep.targets = {OptTarget::ReadEDP, OptTarget::WriteEDP};
    sweep.traffics = {llcTrafficPattern(llc)};
    auto results = runSweep(sweep);

    // Filter: must meet demand and last at least 3 years — the same
    // declarative clauses the CLI's --filter flag and a config's
    // "constraints" array accept.
    metrics::ConstraintSet constraints;
    constraints.add("latency_load<=1.0");
    constraints.add("meets_read_bw>=1");
    constraints.add("meets_write_bw>=1");
    constraints.add("lifetime_years>=3");
    auto eligible = constraints.filter(results);

    Table table("16MB LLC candidates (viable, >=3yr lifetime)",
                {"Cell", "Power[mW]", "LatencyLoad", "Lifetime[yr]"});
    for (const auto &ev : eligible) {
        table.row()
            .add(ev.array.cell.name)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.lifetimeYears());
    }
    table.print(std::cout);

    auto front = metrics::paretoByMetrics(
        eligible, {"total_power", "latency_load"});
    std::cout << "Pareto-optimal (power x latency load):";
    for (const auto &ev : front)
        std::cout << " " << ev.array.cell.name;
    std::cout << "\n";
    return 0;
}
